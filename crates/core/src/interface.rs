//! Phase 4: interface solves and the local update matrices
//! `T̃_ℓ = W̃_ℓ G̃_ℓ` (equation (5) of the paper).

use std::time::Instant;

use slu::blocked::{
    solve_in_blocks_ordered, solve_in_blocks_planned, BlockSolveStats, BlockedSolvePlan,
};
use slu::trisolve::{transpose_with_sources, SolveWorkspace, SparseVec};
use sparsekit::budget::{Budget, BudgetInterrupt};
use sparsekit::spgemm::{spgemm_checked_workers, SpgemmError};
use sparsekit::{Csc, Csr};

use crate::extract::LocalDomain;
use crate::rhs_order::{order_columns, RhsOrdering};
use crate::stats::InterfaceStats;
use crate::subdomain::FactoredDomain;

/// Parameters of the interface computation.
#[derive(Clone, Copy, Debug)]
pub struct InterfaceConfig {
    /// Block size `B` for the simultaneous triangular solves.
    pub block_size: usize,
    /// Column/row ordering strategy (§IV).
    pub ordering: RhsOrdering,
    /// Drop threshold for `W̃` and `G̃` entries (σ₁ in PDSLin).
    pub drop_tol: f64,
}

impl Default for InterfaceConfig {
    fn default() -> Self {
        InterfaceConfig {
            block_size: 60, // the PDSLin default noted in §V-B
            ordering: RhsOrdering::Postorder,
            drop_tol: 1e-6,
        }
    }
}

/// Result of the interface phase for one subdomain.
#[derive(Clone, Debug)]
pub struct InterfaceOutcome {
    /// `T̃_ℓ = W̃_ℓ G̃_ℓ`, rows indexed like `f_rows`, columns like
    /// `e_cols` (original order).
    pub t_tilde: Csr,
    /// Table-III style statistics.
    pub stats: InterfaceStats,
    /// Blocked-solve accounting for `G`.
    pub g_block: BlockSolveStats,
    /// Blocked-solve accounting for `W`.
    pub w_block: BlockSolveStats,
}

/// Extracts the columns of `Ê` as sparse vectors in pivot-row
/// coordinates of the subdomain factor.
pub fn ehat_columns_pivot(fd: &FactoredDomain, dom: &LocalDomain) -> Vec<SparseVec> {
    let ecsc = dom.e_hat.to_csc();
    (0..ecsc.ncols())
        .map(|j| {
            let mut idx = Vec::with_capacity(ecsc.col_nnz(j));
            let mut val = Vec::with_capacity(ecsc.col_nnz(j));
            for (i, v) in ecsc.col_iter(j) {
                idx.push(fd.row_to_pivot(i));
                val.push(v);
            }
            SparseVec::new(idx, val)
        })
        .collect()
}

/// Extracts the rows of `F̂` (columns of `F̂ᵀ`) in elimination-order
/// coordinates, ready for the `Uᵀ` lower solve.
pub fn fhat_rows_elim(fd: &FactoredDomain, dom: &LocalDomain) -> Vec<SparseVec> {
    (0..dom.f_hat.nrows())
        .map(|r| {
            let mut idx = Vec::with_capacity(dom.f_hat.row_nnz(r));
            let mut val = Vec::with_capacity(dom.f_hat.row_nnz(r));
            for (c, v) in dom.f_hat.row_iter(r) {
                idx.push(fd.col_to_elim(c));
                val.push(v);
            }
            SparseVec::new(idx, val)
        })
        .collect()
}

/// Runs only the `G = L⁻¹ P Ê` part and reports its blocked-solve
/// statistics and wall-clock time — the Fig. 4 / Fig. 5 kernel.
pub fn g_solve_experiment(
    fd: &FactoredDomain,
    dom: &LocalDomain,
    block_size: usize,
    ordering: RhsOrdering,
) -> (BlockSolveStats, f64, f64) {
    let n = fd.lu.n();
    let mut ws = SolveWorkspace::new(n);
    let cols = ehat_columns_pivot(fd, dom);
    let t0 = Instant::now();
    let order = order_columns(&cols, &fd.lu.l, block_size, ordering, &mut ws);
    let order_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (_sols, stats) = solve_in_blocks_ordered(
        &fd.lu.l,
        true,
        &cols,
        &order,
        block_size,
        1,
        &Budget::unlimited(),
    )
    .expect("an unlimited budget never interrupts");
    let solve_seconds = t1.elapsed().as_secs_f64();
    (stats, solve_seconds, order_seconds)
}

/// Builds an `nrows × ncols` CSR whose column `order[p]` is the sparse
/// vector `sols[p]`. Entries are scattered in ascending column order, so
/// every CSR row comes out sorted without a per-row sort — and without
/// materialising a COO copy of the whole matrix.
fn csr_from_column_solutions(
    nrows: usize,
    ncols: usize,
    order: &[usize],
    sols: &[SparseVec],
) -> Csr {
    debug_assert_eq!(order.len(), sols.len());
    let mut inv = vec![usize::MAX; ncols];
    for (p, &j) in order.iter().enumerate() {
        inv[j] = p;
    }
    let mut indptr = vec![0usize; nrows + 1];
    for s in sols {
        for &i in &s.indices {
            indptr[i + 1] += 1;
        }
    }
    for i in 0..nrows {
        indptr[i + 1] += indptr[i];
    }
    let nnz = indptr[nrows];
    let mut cursor: Vec<usize> = indptr[..nrows].to_vec();
    let mut indices = vec![0usize; nnz];
    let mut values = vec![0f64; nnz];
    for (j, &p) in inv.iter().enumerate() {
        if p == usize::MAX {
            continue;
        }
        let s = &sols[p];
        for (&i, &v) in s.indices.iter().zip(&s.values) {
            let dst = cursor[i];
            indices[dst] = j;
            values[dst] = v;
            cursor[i] += 1;
        }
    }
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

/// Builds an `nrows × ncols` CSR whose row `order[p]` is the sparse
/// vector `sols[p]` (indices sorted per row via one reused buffer).
fn csr_from_row_solutions(nrows: usize, ncols: usize, order: &[usize], sols: &[SparseVec]) -> Csr {
    debug_assert_eq!(order.len(), sols.len());
    let mut inv = vec![usize::MAX; nrows];
    for (p, &r) in order.iter().enumerate() {
        inv[r] = p;
    }
    let mut indptr = vec![0usize; nrows + 1];
    for (p, s) in sols.iter().enumerate() {
        indptr[order[p] + 1] = s.nnz();
    }
    for i in 0..nrows {
        indptr[i + 1] += indptr[i];
    }
    let nnz = indptr[nrows];
    let mut indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    let mut pairs: Vec<(usize, f64)> = Vec::new();
    for &p in &inv {
        if p == usize::MAX {
            continue;
        }
        let s = &sols[p];
        pairs.clear();
        pairs.extend(s.indices.iter().zip(&s.values).map(|(&c, &v)| (c, v)));
        pairs.sort_unstable_by_key(|&(c, _)| c);
        for &(c, v) in &pairs {
            indices.push(c);
            values.push(v);
        }
    }
    Csr::from_parts(nrows, ncols, indptr, indices, values)
}

/// Computes `G̃`, `W̃` and `T̃ = W̃ G̃` for one subdomain.
pub fn compute_interface(
    fd: &FactoredDomain,
    dom: &LocalDomain,
    cfg: &InterfaceConfig,
) -> InterfaceOutcome {
    compute_interface_budgeted(fd, dom, cfg, &Budget::unlimited())
        .expect("an unlimited budget never interrupts")
}

/// [`compute_interface`] under an execution [`Budget`]: the deadline and
/// cancel token are checked before each of the three kernels (`G` solve,
/// `W` solve, `T̃` product), and the SpGEMM polls the budget between
/// output rows. Single-worker convenience wrapper around
/// [`compute_interface_workers`].
pub fn compute_interface_budgeted(
    fd: &FactoredDomain,
    dom: &LocalDomain,
    cfg: &InterfaceConfig,
    budget: &Budget,
) -> Result<InterfaceOutcome, BudgetInterrupt> {
    compute_interface_workers(fd, dom, cfg, budget, 1)
}

/// [`compute_interface_budgeted`] with intra-subdomain parallelism: the
/// `G` and `W` blocked solves run their column blocks on up to `workers`
/// threads (per-worker pooled workspaces, results merged in block
/// order), and `T̃ = W̃ G̃` uses the row-parallel two-phase SpGEMM. The
/// output is byte-identical to `workers == 1` for any worker count.
pub fn compute_interface_workers(
    fd: &FactoredDomain,
    dom: &LocalDomain,
    cfg: &InterfaceConfig,
    budget: &Budget,
    workers: usize,
) -> Result<InterfaceOutcome, BudgetInterrupt> {
    compute_interface_planned(fd, dom, cfg, budget, workers, None).map(|(out, _)| out)
}

/// Value-independent scaffolding of the interface computation for one
/// subdomain: the column orderings, the blocked-solve plans of the `G`
/// and `W` solves (per-block union reaches — the dominant symbolic
/// cost), and the structure of `Uᵀ` with its value-refresh permutation.
///
/// Everything here depends only on *patterns*: of the subdomain factor
/// (frozen across [`crate::Pdslin::update_values`] by pivot replay) and
/// of `Ê`/`F̂` (frozen by the shared DBBD partition). A sequence solve
/// captures the plan on the first interface computation and replays
/// numerics only on every later step.
#[derive(Clone, Debug)]
pub struct InterfacePlan {
    g_order: Vec<usize>,
    g_plan: BlockedSolvePlan,
    w_order: Vec<usize>,
    w_plan: BlockedSolvePlan,
    /// Cached `Uᵀ` (structure valid across replays; values stale).
    ut: Csc,
    /// `ut.values()[i] = u.values()[ut_src[i]]` refresh permutation.
    ut_src: Vec<usize>,
}

impl InterfacePlan {
    /// Heap bytes held by the cached scaffolding.
    pub fn memory_bytes(&self) -> usize {
        let usz = std::mem::size_of::<usize>();
        (self.g_order.capacity() + self.w_order.capacity() + self.ut_src.capacity()) * usz
            + self.g_plan.memory_bytes()
            + self.w_plan.memory_bytes()
            + self.ut.nnz() * (2 * usz + std::mem::size_of::<f64>())
    }
}

/// [`compute_interface_workers`] with plan capture/reuse: pass `None` to
/// build the scaffolding (returned as the second tuple element for the
/// caller to keep), or `Some(plan)` from an earlier call against factors
/// refreshed in place — the reach DFS, column ordering, and transpose
/// construction are then all skipped. Outputs are byte-identical either
/// way.
pub fn compute_interface_planned(
    fd: &FactoredDomain,
    dom: &LocalDomain,
    cfg: &InterfaceConfig,
    budget: &Budget,
    workers: usize,
    plan: Option<&InterfacePlan>,
) -> Result<(InterfaceOutcome, Option<InterfacePlan>), BudgetInterrupt> {
    budget.check()?;
    let n = fd.lu.n();
    let ne = dom.e_cols.len();
    let nf = dom.f_rows.len();

    let e_cols_piv = ehat_columns_pivot(fd, dom);
    let f_rows_elim = fhat_rows_elim(fd, dom);
    // Build the scaffolding when no plan was supplied; `built` is handed
    // back to the caller so the next call can skip this entirely.
    let built: Option<InterfacePlan> = match plan {
        Some(_) => None,
        None => {
            let mut ws = SolveWorkspace::new(n);
            let g_order =
                order_columns(&e_cols_piv, &fd.lu.l, cfg.block_size, cfg.ordering, &mut ws);
            let g_plan = BlockedSolvePlan::build(&fd.lu.l, &e_cols_piv, &g_order, cfg.block_size);
            let (ut, ut_src) = transpose_with_sources(&fd.lu.u);
            let w_order = order_columns(&f_rows_elim, &ut, cfg.block_size, cfg.ordering, &mut ws);
            let w_plan = BlockedSolvePlan::build(&ut, &f_rows_elim, &w_order, cfg.block_size);
            Some(InterfacePlan {
                g_order,
                g_plan,
                w_order,
                w_plan,
                ut,
                ut_src,
            })
        }
    };
    let p = plan.unwrap_or_else(|| built.as_ref().expect("built when no plan supplied"));
    // The cached `Uᵀ` structure is current; its values are refreshed
    // through the recorded permutation (a freshly built plan already
    // holds current values, but the copy is cheap and keeps one path).
    let mut ut = p.ut.clone();
    {
        let uv = fd.lu.u.values();
        let utv = ut.values_mut();
        for (dst, &s) in p.ut_src.iter().enumerate() {
            utv[dst] = uv[s];
        }
    }

    // --- G = L⁻¹ P Ê ---
    let t_g = Instant::now();
    let (mut g_sols, g_block) =
        solve_in_blocks_planned(&fd.lu.l, true, &e_cols_piv, &p.g_plan, workers, budget)?;
    let g_seconds = t_g.elapsed().as_secs_f64();
    // Row coverage before dropping = union of reaches.
    let mut row_touched = vec![false; n];
    for s in &g_sols {
        for &i in &s.indices {
            row_touched[i] = true;
        }
    }
    let nnzrow_g = row_touched.iter().filter(|&&t| t).count();
    // G̃ (dropped) as CSR, columns mapped back to original Ê order —
    // built directly from the per-column solutions, no COO round-trip.
    for s in &mut g_sols {
        s.drop_small(cfg.drop_tol);
    }
    let g_tilde = csr_from_column_solutions(n, ne, &p.g_order, &g_sols);
    drop(g_sols);

    // --- Wᵀ = U⁻ᵀ Qᵀ F̂ᵀ ---
    budget.check()?;
    let t_w = Instant::now();
    let (mut w_sols, w_block) =
        solve_in_blocks_planned(&ut, false, &f_rows_elim, &p.w_plan, workers, budget)?;
    let w_seconds = t_w.elapsed().as_secs_f64();
    // W̃ as CSR (rows = f_rows order, columns = elimination coords).
    for s in &mut w_sols {
        s.drop_small(cfg.drop_tol);
    }
    let w_tilde = csr_from_row_solutions(nf, n, &p.w_order, &w_sols);
    drop(w_sols);

    // --- T̃ = W̃ G̃ ---
    // W̃ columns are elimination coordinates; G̃ rows are pivot
    // coordinates. These agree: U's rows (= Uᵀ's columns) and L's rows
    // both live in pivot order, and column l of U corresponds to pivot
    // step l. So the inner dimension matches directly.
    let t_tilde = match spgemm_checked_workers(&w_tilde, &g_tilde, budget, workers) {
        Ok(t) => t,
        Err(SpgemmError::Interrupted(i)) => return Err(i),
        // The coordinate argument above makes a mismatch a logic error.
        Err(e @ SpgemmError::DimensionMismatch { .. }) => panic!("{e}"),
    };

    let stats = InterfaceStats {
        nnz_g: g_block.true_nnz,
        nnzcol_g: ne,
        nnzrow_g,
        nnz_e: dom.e_hat.nnz() as u64,
        padded_zeros: g_block.padded_zeros,
        padding_fraction: g_block.padding_fraction(),
        solve_seconds: g_seconds + w_seconds,
    };
    Ok((
        InterfaceOutcome {
            t_tilde,
            stats,
            g_block,
            w_block,
        },
        built,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_dbbd;
    use crate::partition::{compute_partition, PartitionerKind};
    use crate::subdomain::factor_domain;
    use matgen::stencil::laplace2d;

    fn small_system() -> (sparsekit::Csr, crate::extract::DbbdSystem) {
        let a = laplace2d(10, 10);
        let p = compute_partition(&a, 2, &PartitionerKind::Ngd);
        let sys = extract_dbbd(&a, p);
        (a, sys)
    }

    /// Dense reference: T = F̂ D⁻¹ Ê computed column by column with the
    /// plain LU solve.
    fn dense_t(dom: &LocalDomain, fd: &FactoredDomain) -> Vec<Vec<f64>> {
        let ne = dom.e_cols.len();
        let nf = dom.f_rows.len();
        let ndom = dom.dim();
        let mut t = vec![vec![0.0; ne]; nf];
        for j in 0..ne {
            let mut b = vec![0.0; ndom];
            for i in 0..ndom {
                b[i] = dom.e_hat.get(i, j);
            }
            let x = fd.lu.solve(&b);
            let w = dom.f_hat.matvec(&x);
            for r in 0..nf {
                t[r][j] = w[r];
            }
        }
        t
    }

    #[test]
    fn t_tilde_matches_dense_reference_without_dropping() {
        let (_a, sys) = small_system();
        for dom in &sys.domains {
            let fd = factor_domain(&dom.d, 0.1).unwrap();
            let cfg = InterfaceConfig {
                block_size: 8,
                ordering: RhsOrdering::Postorder,
                drop_tol: 0.0,
            };
            let out = compute_interface(&fd, dom, &cfg);
            let tref = dense_t(dom, &fd);
            assert_eq!(out.t_tilde.nrows(), dom.f_rows.len());
            assert_eq!(out.t_tilde.ncols(), dom.e_cols.len());
            for r in 0..dom.f_rows.len() {
                for c in 0..dom.e_cols.len() {
                    let got = out.t_tilde.get(r, c);
                    assert!(
                        (got - tref[r][c]).abs() < 1e-9,
                        "T mismatch at ({r},{c}): {got} vs {}",
                        tref[r][c]
                    );
                }
            }
        }
    }

    #[test]
    fn orderings_do_not_change_t() {
        let (_a, sys) = small_system();
        let dom = &sys.domains[0];
        let fd = factor_domain(&dom.d, 0.1).unwrap();
        let mk = |ordering| InterfaceConfig {
            block_size: 4,
            ordering,
            drop_tol: 0.0,
        };
        let t_nat = compute_interface(&fd, dom, &mk(RhsOrdering::Natural)).t_tilde;
        let t_post = compute_interface(&fd, dom, &mk(RhsOrdering::Postorder)).t_tilde;
        let t_hyp = compute_interface(&fd, dom, &mk(RhsOrdering::Hypergraph { tau: None })).t_tilde;
        for r in 0..t_nat.nrows() {
            for c in 0..t_nat.ncols() {
                assert!((t_nat.get(r, c) - t_post.get(r, c)).abs() < 1e-10);
                assert!((t_nat.get(r, c) - t_hyp.get(r, c)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn dropping_reduces_nnz() {
        let (_a, sys) = small_system();
        let dom = &sys.domains[0];
        let fd = factor_domain(&dom.d, 0.1).unwrap();
        let exact = compute_interface(
            &fd,
            dom,
            &InterfaceConfig {
                block_size: 8,
                ordering: RhsOrdering::Natural,
                drop_tol: 0.0,
            },
        );
        let dropped = compute_interface(
            &fd,
            dom,
            &InterfaceConfig {
                block_size: 8,
                ordering: RhsOrdering::Natural,
                drop_tol: 1e-2,
            },
        );
        assert!(dropped.t_tilde.nnz() <= exact.t_tilde.nnz());
    }

    #[test]
    fn parallel_interface_is_byte_identical_to_serial() {
        let (_a, sys) = small_system();
        let budget = Budget::unlimited();
        for dom in &sys.domains {
            let fd = factor_domain(&dom.d, 0.1).unwrap();
            let cfg = InterfaceConfig {
                block_size: 4,
                ordering: RhsOrdering::Postorder,
                drop_tol: 1e-8,
            };
            let serial = compute_interface_workers(&fd, dom, &cfg, &budget, 1).unwrap();
            for w in [2usize, 4] {
                let par = compute_interface_workers(&fd, dom, &cfg, &budget, w).unwrap();
                assert_eq!(par.t_tilde, serial.t_tilde, "workers {w}");
                assert_eq!(par.g_block, serial.g_block, "workers {w}");
                assert_eq!(par.w_block, serial.w_block, "workers {w}");
                assert_eq!(par.stats.nnzrow_g, serial.stats.nnzrow_g, "workers {w}");
            }
        }
    }

    #[test]
    fn g_experiment_reports_padding() {
        let (_a, sys) = small_system();
        let dom = &sys.domains[0];
        let fd = factor_domain(&dom.d, 0.1).unwrap();
        let (b1, _, _) = g_solve_experiment(&fd, dom, 1, RhsOrdering::Natural);
        assert_eq!(b1.padded_zeros, 0, "B=1 never pads");
        let (b16, _, _) = g_solve_experiment(&fd, dom, 16, RhsOrdering::Natural);
        assert!(b16.padded_zeros >= b1.padded_zeros);
    }

    #[test]
    fn postorder_pads_no_more_than_natural_on_average() {
        // Not guaranteed per-instance in general, but holds comfortably on
        // grid problems with several subdomains (the paper's Fig. 4).
        let (_a, sys) = small_system();
        let mut nat = 0u64;
        let mut post = 0u64;
        for dom in &sys.domains {
            let fd = factor_domain(&dom.d, 0.1).unwrap();
            nat += g_solve_experiment(&fd, dom, 8, RhsOrdering::Natural)
                .0
                .padded_zeros;
            post += g_solve_experiment(&fd, dom, 8, RhsOrdering::Postorder)
                .0
                .padded_zeros;
        }
        assert!(
            post <= nat,
            "postorder padding {post} should not exceed natural {nat}"
        );
    }
}
