//! Automatic strategy selection: cheap structural features of the input
//! matrix → partitioner + weighting + RHS ordering + block size.
//!
//! The paper's experiments (Tables I–II, Figs. 3–4) show that no single
//! configuration wins across the Table-I suite: graded cavity meshes
//! want RHB's multi-constraint balancing, circuit matrices with
//! quasi-dense rails want value-scaled net costs, and the best RHS
//! ordering flips between postorder and the hypergraph/RGB layouts with
//! the density of the interface columns. [`select_strategy`] encodes
//! those observations as deterministic thresholds over features sampled
//! in `O(nnz of sampled rows)` time, so the CLI and the service can pick
//! a sensible configuration without a trial factorization.
//!
//! Everything here is deterministic: sampling uses a fixed stride, never
//! randomness, so the same matrix always maps to the same [`Strategy`]
//! from any thread.

use graphpart::WeightScheme;
use hypergraph::RhbConfig;
use sparsekit::Csr;

use crate::partition::PartitionerKind;
use crate::rhs_order::RhsOrdering;

/// Cheap structural features of a matrix, sampled deterministically.
#[derive(Clone, Copy, Debug)]
pub struct MatrixFeatures {
    /// Matrix dimension.
    pub n: usize,
    /// Total stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
    /// Maximum nonzeros in a single row.
    pub max_row_nnz: usize,
    /// `max_row_nnz / avg_row_nnz` — row-density skew; rails and hubs in
    /// circuit matrices push this far above the ~1–3 of mesh stencils.
    pub row_skew: f64,
    /// Largest sampled `|i − j| / n` — the relative bandwidth.
    pub bandwidth_frac: f64,
    /// Fraction of sampled off-diagonal entries whose structural mirror
    /// `(j, i)` is also stored (1.0 for symmetric patterns).
    pub symmetry: f64,
    /// `log10(max |a_ij| / min |a_ij|)` over sampled nonzero
    /// off-diagonal entries — the dynamic range (in decades) of the
    /// coefficients. Weak couplings far below the typical magnitude
    /// (power rails, controlled sources) push this up.
    pub value_spread: f64,
}

/// Rows sampled (evenly strided) when measuring per-row features.
const SAMPLE_ROWS: usize = 512;

/// Samples [`MatrixFeatures`] from `a` with a fixed stride — the same
/// matrix always yields the same features.
pub fn sample_features(a: &Csr) -> MatrixFeatures {
    let n = a.nrows();
    let nnz = a.nnz();
    if n == 0 {
        return MatrixFeatures {
            n,
            nnz,
            avg_row_nnz: 0.0,
            max_row_nnz: 0,
            row_skew: 1.0,
            bandwidth_frac: 0.0,
            symmetry: 1.0,
            value_spread: 0.0,
        };
    }
    let avg_row_nnz = nnz as f64 / n as f64;
    // max row nnz is exact (indptr diff is O(n) and branch-free).
    let mut max_row_nnz = 0usize;
    for i in 0..n {
        max_row_nnz = max_row_nnz.max(a.row_nnz(i));
    }
    let stride = (n / SAMPLE_ROWS).max(1);
    let mut band = 0usize;
    let mut mirrored = 0usize;
    let mut offdiag = 0usize;
    let mut max_abs = 0.0f64;
    let mut min_abs = f64::INFINITY;
    let mut i = 0usize;
    while i < n {
        for (j, v) in a.row_iter(i) {
            if j == i {
                continue;
            }
            offdiag += 1;
            band = band.max(i.abs_diff(j));
            if a.row_indices(j).binary_search(&i).is_ok() {
                mirrored += 1;
            }
            let m = v.abs();
            if m > 0.0 && m.is_finite() {
                max_abs = max_abs.max(m);
                min_abs = min_abs.min(m);
            }
        }
        i += stride;
    }
    let symmetry = if offdiag == 0 {
        1.0
    } else {
        mirrored as f64 / offdiag as f64
    };
    let value_spread = if min_abs.is_finite() && max_abs > 0.0 {
        (max_abs / min_abs).log10().max(0.0)
    } else {
        0.0
    };
    MatrixFeatures {
        n,
        nnz,
        avg_row_nnz,
        max_row_nnz,
        row_skew: if avg_row_nnz > 0.0 {
            max_row_nnz as f64 / avg_row_nnz
        } else {
            1.0
        },
        bandwidth_frac: band as f64 / n as f64,
        symmetry,
        value_spread,
    }
}

/// A complete configuration choice made by the selector.
#[derive(Clone, Copy, Debug)]
pub struct Strategy {
    /// Chosen DBBD partitioner.
    pub partitioner: PartitionerKind,
    /// Chosen edge/net weighting.
    pub weights: WeightScheme,
    /// Chosen RHS ordering for the interface solves.
    pub ordering: RhsOrdering,
    /// Chosen block size `B`.
    pub block_size: usize,
    /// Why this strategy was picked (for logs and the bench harness).
    pub rationale: &'static str,
}

impl Strategy {
    /// Applies the choice onto a [`crate::PdslinConfig`], leaving the
    /// unrelated fields (tolerances, Krylov, fault plan) untouched.
    pub fn apply(&self, cfg: &mut crate::PdslinConfig) {
        cfg.partitioner = self.partitioner;
        cfg.weights = self.weights;
        cfg.rhs_ordering = self.ordering;
        cfg.block_size = self.block_size;
    }
}

/// Row-density skew above which a matrix is treated as "circuit-like"
/// (hubs / rails) rather than mesh-like.
pub const SKEW_CIRCUIT: f64 = 8.0;
/// Structural-symmetry fraction below which postorder (which never
/// inspects the unsymmetric pattern twice) is preferred. Symmetric
/// patterns sample exactly 1.0, so the margin only has to separate
/// "truly unsymmetric" from sampling noise.
pub const SYMMETRY_MESH: f64 = 0.95;
/// Coefficient dynamic range (decades) above which value-scaled weights
/// are worth the extra symbolic work.
pub const SPREAD_VALUE_SCALED: f64 = 2.0;
/// Mean row density above which the dense-stencil block size applies.
pub const DENSE_ROW_NNZ: f64 = 20.0;

/// Selects a full [`Strategy`] for `a` from sampled features.
///
/// Deterministic: same matrix → same strategy, on every run and thread.
pub fn select_strategy(a: &Csr) -> Strategy {
    let f = sample_features(a);
    select_from_features(&f)
}

/// The decision tree behind [`select_strategy`], exposed so tests (and
/// docs/partitioning.md) can pin its behaviour feature-by-feature.
pub fn select_from_features(f: &MatrixFeatures) -> Strategy {
    // Block size: dense stencil rows saturate the union-pattern earlier,
    // so smaller blocks pad less; sparse rows amortise better at B=60.
    let block_size = if f.avg_row_nnz >= DENSE_ROW_NNZ || f.n < 4096 {
        30
    } else {
        60
    };
    let weights = if f.value_spread > SPREAD_VALUE_SCALED {
        WeightScheme::ValueScaled
    } else {
        WeightScheme::Unit
    };
    if f.row_skew > SKEW_CIRCUIT {
        // Circuit-like: hubs blow up NGD separators (Fig. 3); RHB's
        // net-cost model isolates them, and the quasi-dense τ filter
        // keeps the rails out of the RHS hypergraph.
        return Strategy {
            partitioner: PartitionerKind::Rhb(RhbConfig::default()),
            weights,
            ordering: RhsOrdering::Hypergraph { tau: Some(0.4) },
            block_size,
            rationale: "circuit-like row skew: RHB + quasi-dense filter",
        };
    }
    if f.symmetry < SYMMETRY_MESH {
        // Unsymmetric mesh (fusion): the symmetrised hypergraph model is
        // a poor proxy, postorder on the factor rows is more reliable.
        return Strategy {
            partitioner: PartitionerKind::Ngd,
            weights,
            ordering: RhsOrdering::Postorder,
            block_size,
            rationale: "unsymmetric pattern: NGD + postorder",
        };
    }
    if f.avg_row_nnz < 10.0 {
        // Sparse symmetric grids (power grid): reaches are long and
        // thin, the RGB sequence layout clusters them well and its
        // natural-order guard makes it safe.
        return Strategy {
            partitioner: PartitionerKind::Rhb(RhbConfig::default()),
            weights,
            ordering: RhsOrdering::Rgb(Default::default()),
            block_size,
            rationale: "sparse symmetric grid: RHB + RGB layout",
        };
    }
    // Dense symmetric stencils (cavities): the paper's headline RHB +
    // hypergraph-ordering configuration.
    Strategy {
        partitioner: PartitionerKind::Rhb(RhbConfig::default()),
        weights,
        ordering: RhsOrdering::Hypergraph { tau: None },
        block_size,
        rationale: "dense symmetric mesh: RHB + hypergraph ordering",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matgen::suite::{generate, MatrixKind, Scale};

    #[test]
    fn features_detect_symmetry_and_skew() {
        let g3 = generate(MatrixKind::G3Circuit, Scale::Test);
        let f = sample_features(&g3);
        assert!(f.symmetry > 0.99, "G3 is symmetric, got {}", f.symmetry);
        let m211 = generate(MatrixKind::Matrix211, Scale::Test);
        let f = sample_features(&m211);
        assert!(
            f.symmetry < SYMMETRY_MESH,
            "m211 unsymmetric, got {}",
            f.symmetry
        );
        let asic = generate(MatrixKind::Asic680ks, Scale::Test);
        let f = sample_features(&asic);
        assert!(f.row_skew > SKEW_CIRCUIT, "ASIC rails, got {}", f.row_skew);
    }

    #[test]
    fn empty_matrix_does_not_panic() {
        let a = sparsekit::Coo::new(0, 0).to_csr();
        let f = sample_features(&a);
        assert_eq!(f.n, 0);
        let _ = select_from_features(&f);
    }

    #[test]
    fn print_features_for_threshold_tuning() {
        for kind in MatrixKind::ALL {
            for scale in [Scale::Test, Scale::Bench] {
                let a = generate(kind, scale);
                let f = sample_features(&a);
                let s = select_from_features(&f);
                println!(
                    "{:12} {:?}: n={:6} avg={:5.1} skew={:5.1} sym={:.3} spread={:.2} -> {} {} {} B={}",
                    kind.name(),
                    scale,
                    f.n,
                    f.avg_row_nnz,
                    f.row_skew,
                    f.symmetry,
                    f.value_spread,
                    s.partitioner.label(),
                    s.weights.label(),
                    s.ordering.label(),
                    s.block_size
                );
            }
        }
    }
}
