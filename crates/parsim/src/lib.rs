//! `parsim` — a discrete-event simulator for two-level parallel
//! schedules.
//!
//! The paper's Fig. 1 runs PDSLin on up to 1024 Cray XE6 cores; this
//! workspace executes on a single node, so large core counts are
//! *simulated* (DESIGN.md §3, substitution 2). This crate provides the
//! simulation substrate: a DAG of **moldable gang tasks** (each task runs
//! on a fixed processor gang with an Amdahl-style intra-gang speedup
//! curve), scheduled on a machine with a finite core count by a list
//! scheduler, plus communication tasks costed with a latency/bandwidth
//! (α–β) model.
//!
//! [`pdslin_model`] builds the PDSLin task graph (per-subdomain `LU(D)`
//! and `Comp(S)` gangs, `T̃` gather messages, `LU(S)` and the iterative
//! solve on the full machine) from *measured* sequential costs.
//!
//! # Example
//!
//! ```
//! use parsim::{Machine, TaskGraph};
//!
//! let m = Machine { cores: 4, ..Default::default() };
//! let mut g = TaskGraph::new();
//! // Two independent 10-second tasks, each on a 2-core gang.
//! let a = g.add_compute("a", 10.0, 2, &[]);
//! let _b = g.add_compute("b", 10.0, 2, &[]);
//! // A final task depending on `a`, using the whole machine.
//! g.add_compute("c", 4.0, 4, &[a]);
//! let s = parsim::simulate(&g, &m);
//! assert!(s.makespan > 0.0);
//! ```

pub mod machine;
pub mod pdslin_model;
pub mod schedule;
pub mod task;

pub use machine::Machine;
pub use schedule::{simulate, Schedule};
pub use task::{TaskGraph, TaskId, TaskKind};
