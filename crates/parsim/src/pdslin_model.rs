//! The PDSLin task graph: from measured sequential phase costs to a
//! simulated two-level schedule.

use crate::machine::Machine;
use crate::schedule::{simulate, Schedule};
use crate::task::TaskGraph;

/// Measured inputs for one solver configuration.
#[derive(Clone, Debug, Default)]
pub struct MeasuredCosts {
    /// Sequential seconds to factor each `D_ℓ`.
    pub lu_d: Vec<f64>,
    /// Sequential seconds of interface work per subdomain.
    pub comp_s: Vec<f64>,
    /// Bytes of `T̃_ℓ` each subdomain contributes to the gather
    /// (≈ 12 bytes per nonzero: value + packed index).
    pub gather_bytes: Vec<f64>,
    /// Sequential seconds of `LU(S̃)`.
    pub lu_s: f64,
    /// Sequential seconds of the iterative solve.
    pub solve: f64,
}

/// Phase breakdown of one simulated configuration (a Fig.-1 bar).
#[derive(Clone, Copy, Debug)]
pub struct SimulatedTimes {
    /// Total cores.
    pub cores: usize,
    /// `LU(D)` window.
    pub lu_d: f64,
    /// `Comp(S)` window (including the gather messages).
    pub comp_s: f64,
    /// `LU(S)` window.
    pub lu_s: f64,
    /// Iterative-solve window.
    pub solve: f64,
    /// End-to-end makespan.
    pub makespan: f64,
}

/// Builds the PDSLin DAG for `k` subdomains on a `cores`-core machine:
/// every subdomain gets a `cores/k` gang for its `LU(D)` and `Comp(S)`
/// tasks, the `T̃` gathers are α–β messages, and `LU(S)` plus the solve
/// run on the full machine.
pub fn build_graph(costs: &MeasuredCosts, cores: usize, k: usize) -> TaskGraph {
    assert_eq!(costs.lu_d.len(), k);
    assert_eq!(costs.comp_s.len(), k);
    let gang = (cores / k).max(1);
    let mut g = TaskGraph::new();
    let mut gathers = Vec::with_capacity(k);
    for l in 0..k {
        let lu = g.add_compute(&format!("lu_d:{l}"), costs.lu_d[l], gang, &[]);
        let cs = g.add_compute(&format!("comp_s:{l}"), costs.comp_s[l], gang, &[lu]);
        let bytes = costs.gather_bytes.get(l).copied().unwrap_or(0.0);
        gathers.push(g.add_message(&format!("gather:{l}"), bytes, &[cs]));
    }
    let lu_s = g.add_compute("lu_s", costs.lu_s, cores, &gathers);
    g.add_compute("solve", costs.solve, cores, &[lu_s]);
    g
}

/// Simulates one core count and extracts the phase breakdown.
pub fn simulate_config(
    costs: &MeasuredCosts,
    machine: &Machine,
    k: usize,
) -> (SimulatedTimes, Schedule) {
    let g = build_graph(costs, machine.cores, k);
    let s = simulate(&g, machine);
    let times = SimulatedTimes {
        cores: machine.cores,
        lu_d: s.phase_span(&g, "lu_d"),
        comp_s: s.phase_span(&g, "comp_s") + s.phase_span(&g, "gather"),
        lu_s: s.phase_span(&g, "lu_s"),
        solve: s.phase_span(&g, "solve"),
        makespan: s.makespan,
    };
    (times, s)
}

/// Simulates a whole core sweep (the Fig.-1 x-axis).
pub fn sweep(
    costs: &MeasuredCosts,
    base: &Machine,
    k: usize,
    core_counts: &[usize],
) -> Vec<SimulatedTimes> {
    core_counts
        .iter()
        .map(|&cores| simulate_config(costs, &Machine { cores, ..*base }, k).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> MeasuredCosts {
        MeasuredCosts {
            lu_d: vec![4.0, 6.0, 5.0, 4.5],
            comp_s: vec![9.0, 12.0, 10.0, 11.0],
            gather_bytes: vec![1e7; 4],
            lu_s: 8.0,
            solve: 3.0,
        }
    }

    #[test]
    fn sweep_is_monotone_in_cores() {
        let c = costs();
        let base = Machine::default();
        let sw = sweep(&c, &base, 4, &[4, 16, 64, 256]);
        for w in sw.windows(2) {
            assert!(
                w[1].makespan <= w[0].makespan + 1e-9,
                "makespan increased: {} -> {}",
                w[0].makespan,
                w[1].makespan
            );
        }
    }

    #[test]
    fn one_core_per_domain_matches_sequential_maxima() {
        let c = costs();
        let m = Machine {
            cores: 4,
            serial_fraction: 0.0,
            latency: 0.0,
            ..Default::default()
        };
        let (t, _s) = simulate_config(&c, &m, 4);
        // Each domain runs on 1 core: LU(D) window = max sequential cost.
        assert!((t.lu_d - 6.0).abs() < 1e-9, "lu_d window {}", t.lu_d);
    }

    #[test]
    fn imbalance_dominates_the_makespan() {
        let mut skew = costs();
        skew.comp_s[2] = 60.0;
        let m = Machine {
            cores: 32,
            ..Default::default()
        };
        let balanced = simulate_config(&costs(), &m, 4).0;
        let skewed = simulate_config(&skew, &m, 4).0;
        assert!(skewed.makespan > balanced.makespan + 1.0);
    }

    #[test]
    fn phases_do_not_overlap_across_barriers() {
        // LU(S) depends on every gather, so its window starts after the
        // last Comp(S) finishes.
        let c = costs();
        let m = Machine {
            cores: 8,
            ..Default::default()
        };
        let g = build_graph(&c, m.cores, 4);
        let s = simulate(&g, &m);
        let (_, comp_end) = s.phase_window(&g, "comp_s").unwrap();
        let (lus_start, _) = s.phase_window(&g, "lu_s").unwrap();
        assert!(lus_start >= comp_end - 1e-12);
    }

    #[test]
    fn gather_volume_matters_at_scale() {
        let mut heavy = costs();
        heavy.gather_bytes = vec![5e9; 4]; // 1 second each at 5 GB/s
        let m = Machine {
            cores: 1024,
            ..Default::default()
        };
        let light = simulate_config(&costs(), &m, 4).0;
        let loaded = simulate_config(&heavy, &m, 4).0;
        assert!(loaded.makespan > light.makespan + 0.5);
    }
}
