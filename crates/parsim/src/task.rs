//! Moldable gang-task DAGs.

/// Identifier of a task within a [`TaskGraph`].
pub type TaskId = usize;

/// What a task models (used for phase attribution in reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// CPU work on a processor gang.
    Compute,
    /// A message (latency + volume/bandwidth); occupies no cores.
    Communication,
}

/// One node of the task DAG.
#[derive(Clone, Debug)]
pub struct Task {
    /// Human-readable label (phase attribution key, e.g. `"lu_d"`).
    pub label: String,
    /// Sequential cost in seconds (compute) or message volume in bytes
    /// (communication).
    pub cost: f64,
    /// Gang size (compute tasks; ignored for communication).
    pub gang: usize,
    /// Dependencies that must finish before this task starts.
    pub deps: Vec<TaskId>,
    /// Task kind.
    pub kind: TaskKind,
}

/// A DAG of moldable gang tasks.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph { tasks: Vec::new() }
    }

    /// Adds a compute task with `cost` sequential seconds on a gang of
    /// `gang` cores; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `gang == 0` or a dependency id is out of range.
    pub fn add_compute(&mut self, label: &str, cost: f64, gang: usize, deps: &[TaskId]) -> TaskId {
        assert!(gang > 0, "gang must be positive");
        self.push(Task {
            label: label.to_string(),
            cost,
            gang,
            deps: deps.to_vec(),
            kind: TaskKind::Compute,
        })
    }

    /// Adds a communication task carrying `bytes` of payload.
    pub fn add_message(&mut self, label: &str, bytes: f64, deps: &[TaskId]) -> TaskId {
        self.push(Task {
            label: label.to_string(),
            cost: bytes,
            gang: 0,
            deps: deps.to_vec(),
            kind: TaskKind::Communication,
        })
    }

    fn push(&mut self, t: Task) -> TaskId {
        for &d in &t.deps {
            assert!(d < self.tasks.len(), "dependency {d} does not exist yet");
        }
        self.tasks.push(t);
        self.tasks.len() - 1
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks were added.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Read access to a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// Iterates over `(id, task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_deps_checked() {
        let mut g = TaskGraph::new();
        let a = g.add_compute("a", 1.0, 1, &[]);
        let b = g.add_compute("b", 1.0, 2, &[a]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, vec![0]);
    }

    #[test]
    #[should_panic]
    fn forward_dependency_rejected() {
        let mut g = TaskGraph::new();
        g.add_compute("a", 1.0, 1, &[3]);
    }

    #[test]
    #[should_panic]
    fn zero_gang_rejected() {
        let mut g = TaskGraph::new();
        g.add_compute("a", 1.0, 0, &[]);
    }

    #[test]
    fn messages_have_no_gang() {
        let mut g = TaskGraph::new();
        let a = g.add_compute("a", 1.0, 1, &[]);
        let m = g.add_message("gather", 1e6, &[a]);
        assert_eq!(g.task(m).kind, TaskKind::Communication);
    }
}
