//! Machine model: cores, intra-gang scaling, and the α–β network.

/// The simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    /// Total cores.
    pub cores: usize,
    /// Intra-gang speedup exponent: a compute task of sequential cost
    /// `c` on a gang of `g` cores runs in
    /// `c · (serial_fraction + (1 − serial_fraction)/g^alpha)` seconds.
    pub alpha: f64,
    /// Fraction of every compute task that does not parallelise.
    pub serial_fraction: f64,
    /// Message start-up latency in seconds (the α of the α–β model).
    pub latency: f64,
    /// Network bandwidth in bytes/second (the 1/β of the α–β model).
    pub bandwidth: f64,
}

impl Default for Machine {
    fn default() -> Self {
        // Loosely calibrated to a 2010-era Cray XE6 node/Gemini network,
        // the paper's testbed: ~1 µs MPI latency, ~5 GB/s link.
        Machine {
            cores: 8,
            alpha: 0.75,
            serial_fraction: 0.02,
            latency: 2e-6,
            bandwidth: 5e9,
        }
    }
}

impl Machine {
    /// Runtime of a compute task with sequential cost `cost` on `gang`
    /// cores.
    pub fn compute_time(&self, cost: f64, gang: usize) -> f64 {
        let g = gang.max(1) as f64;
        cost * (self.serial_fraction + (1.0 - self.serial_fraction) / g.powf(self.alpha))
    }

    /// Transfer time for a `bytes`-sized message.
    pub fn message_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_gang_is_sequential() {
        let m = Machine::default();
        assert!((m.compute_time(10.0, 1) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_gangs_are_faster_but_sublinear() {
        let m = Machine::default();
        let t4 = m.compute_time(10.0, 4);
        let t16 = m.compute_time(10.0, 16);
        assert!(t4 < 10.0);
        assert!(t16 < t4);
        // Sub-linear: 16 cores are not 4× faster than 4 cores.
        assert!(t16 > t4 / 4.0);
    }

    #[test]
    fn serial_fraction_floors_the_runtime() {
        let m = Machine {
            serial_fraction: 0.1,
            ..Default::default()
        };
        let t = m.compute_time(10.0, 1_000_000);
        assert!(t >= 1.0, "10% serial of 10s can never go below 1s, got {t}");
    }

    #[test]
    fn message_time_has_latency_floor() {
        let m = Machine::default();
        assert!(m.message_time(0.0) >= m.latency);
        let big = m.message_time(5e9);
        assert!((big - (m.latency + 1.0)).abs() < 1e-9);
    }
}
