//! Event-driven list scheduling of gang-task DAGs.

use crate::machine::Machine;
use crate::task::{TaskGraph, TaskId, TaskKind};

/// The simulated schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Start time of every task.
    pub start: Vec<f64>,
    /// Finish time of every task.
    pub finish: Vec<f64>,
    /// Latest finish time.
    pub makespan: f64,
}

impl Schedule {
    /// `(earliest start, latest finish)` over all tasks whose label
    /// starts with `prefix` — the phase window used for Fig.-1 style
    /// breakdowns. Returns `None` when no task matches.
    pub fn phase_window(&self, g: &TaskGraph, prefix: &str) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (id, t) in g.iter() {
            if t.label.starts_with(prefix) {
                lo = lo.min(self.start[id]);
                hi = hi.max(self.finish[id]);
            }
        }
        (lo.is_finite()).then_some((lo, hi))
    }

    /// Duration of a phase window (0 when the phase is absent).
    pub fn phase_span(&self, g: &TaskGraph, prefix: &str) -> f64 {
        self.phase_window(g, prefix).map_or(0.0, |(lo, hi)| hi - lo)
    }
}

/// Simulates `g` on `m` with a deterministic (lowest-id-first) list
/// scheduler. Compute gangs are clamped to the machine size;
/// communication tasks occupy no cores.
pub fn simulate(g: &TaskGraph, m: &Machine) -> Schedule {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    let mut children: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (id, t) in g.iter() {
        indeg[id] = t.deps.len();
        for &d in &t.deps {
            children[d].push(id);
        }
    }
    let mut ready_time = vec![0.0f64; n];
    let mut started = vec![false; n];
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    // Running tasks as (finish_time, id, cores).
    let mut running: Vec<(f64, TaskId, usize)> = Vec::new();
    let mut free = m.cores;
    let mut now = 0.0f64;
    let mut done = 0usize;
    while done < n {
        // Start everything that can start now (id order = deterministic).
        let mut progressed = false;
        for id in 0..n {
            if started[id] || indeg[id] != 0 || ready_time[id] > now {
                continue;
            }
            let t = g.task(id);
            let (cores, dur) = match t.kind {
                TaskKind::Compute => {
                    let gang = t.gang.min(m.cores).max(1);
                    (gang, m.compute_time(t.cost, gang))
                }
                TaskKind::Communication => (0, m.message_time(t.cost)),
            };
            if cores <= free {
                started[id] = true;
                start[id] = now;
                finish[id] = now + dur;
                free -= cores;
                running.push((finish[id], id, cores));
                progressed = true;
            }
        }
        if done + running.len() == n && running.is_empty() {
            break;
        }
        if !progressed || free == 0 {
            // Advance to the next completion (or to the earliest future
            // ready time when nothing is running).
            let next_finish = running
                .iter()
                .map(|&(f, _, _)| f)
                .fold(f64::INFINITY, f64::min);
            let next_ready = (0..n)
                .filter(|&id| !started[id] && indeg[id] == 0 && ready_time[id] > now)
                .map(|id| ready_time[id])
                .fold(f64::INFINITY, f64::min);
            let next = next_finish.min(next_ready);
            assert!(
                next.is_finite(),
                "scheduler stalled: no running tasks and nothing becomes ready"
            );
            now = next;
            // Retire everything finishing at `now`.
            let mut retired = Vec::new();
            running.retain(|&(f, id, cores)| {
                if f <= now + 1e-15 {
                    retired.push((id, cores));
                    false
                } else {
                    true
                }
            });
            for (id, cores) in retired {
                free += cores;
                done += 1;
                for &c in &children[id] {
                    indeg[c] -= 1;
                    if finish[id] > ready_time[c] {
                        ready_time[c] = finish[id];
                    }
                }
            }
        }
    }
    let makespan = finish.iter().copied().fold(0.0, f64::max);
    Schedule {
        start,
        finish,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskGraph;

    fn machine(cores: usize) -> Machine {
        // Linear speedup, zero latency: makes hand-checked numbers exact.
        Machine {
            cores,
            alpha: 1.0,
            serial_fraction: 0.0,
            latency: 0.0,
            bandwidth: 1e9,
        }
    }

    #[test]
    fn independent_tasks_run_in_parallel_when_cores_allow() {
        let mut g = TaskGraph::new();
        g.add_compute("a", 10.0, 1, &[]);
        g.add_compute("b", 10.0, 1, &[]);
        let s = simulate(&g, &machine(2));
        assert!((s.makespan - 10.0).abs() < 1e-12);
        let s1 = simulate(&g, &machine(1));
        assert!(
            (s1.makespan - 20.0).abs() < 1e-12,
            "1 core serialises: {}",
            s1.makespan
        );
    }

    #[test]
    fn dependencies_serialise() {
        let mut g = TaskGraph::new();
        let a = g.add_compute("a", 5.0, 1, &[]);
        g.add_compute("b", 5.0, 1, &[a]);
        let s = simulate(&g, &machine(8));
        assert!((s.makespan - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gangs_shrink_runtime() {
        let mut g = TaskGraph::new();
        g.add_compute("a", 12.0, 4, &[]);
        let s = simulate(&g, &machine(4));
        assert!((s.makespan - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gang_clamped_to_machine() {
        let mut g = TaskGraph::new();
        g.add_compute("a", 12.0, 64, &[]);
        let s = simulate(&g, &machine(4));
        assert!(
            (s.makespan - 3.0).abs() < 1e-12,
            "gang must clamp to 4 cores"
        );
    }

    #[test]
    fn messages_cost_latency_plus_volume() {
        let m = Machine {
            cores: 1,
            latency: 0.5,
            bandwidth: 100.0,
            ..machine(1)
        };
        let mut g = TaskGraph::new();
        let a = g.add_compute("a", 1.0, 1, &[]);
        g.add_message("msg", 50.0, &[a]);
        let s = simulate(&g, &m);
        assert!((s.makespan - (1.0 + 0.5 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn contention_queues_gangs() {
        // Two 2-core gangs on a 3-core machine: they cannot overlap
        // fully; second starts when the first frees its cores.
        let mut g = TaskGraph::new();
        g.add_compute("a", 6.0, 2, &[]);
        g.add_compute("b", 6.0, 2, &[]);
        let s = simulate(&g, &machine(3));
        assert!((s.makespan - 6.0).abs() < 1e-12, "got {}", s.makespan);
        // a: starts at 0 on 2 cores → 3s; b waits (needs 2, only 1 free),
        // starts at 3 → finishes 6.
        assert!((s.start[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phase_windows_report_spans() {
        let mut g = TaskGraph::new();
        let a = g.add_compute("lu_d:0", 4.0, 1, &[]);
        let b = g.add_compute("lu_d:1", 8.0, 1, &[]);
        g.add_compute("lu_s", 2.0, 2, &[a, b]);
        let s = simulate(&g, &machine(2));
        let (lo, hi) = s.phase_window(&g, "lu_d").unwrap();
        assert_eq!(lo, 0.0);
        assert!((hi - 8.0).abs() < 1e-12);
        assert!((s.phase_span(&g, "lu_s") - 1.0).abs() < 1e-12);
        assert!(s.phase_window(&g, "nothing").is_none());
    }
}
