//! Fusion-simulation analogue (`matrix211`): a multi-field 2-D grid
//! operator with unsymmetric pattern.
//!
//! The CEMM tokamak matrices couple several MHD fields per mesh node and
//! contain one-sided (convective) couplings, so both the pattern and the
//! values are unsymmetric, with ~70 nnz/row (Table I). We reproduce that
//! with `nb` unknowns per node on an `nx × ny` grid, dense `nb × nb`
//! blocks on the 9-point neighbourhood, and an extra *upwind-only* block
//! in the +x direction that breaks pattern symmetry.

use sparsekit::{Coo, Csr, Rng64};

/// Generates a `matrix211`-like operator with `nb` fields per node.
///
/// nnz/row ≈ `10 · nb` for interior nodes (9-point neighbourhood plus
/// the upwind block); `nb = 7` matches the paper's ~70.
pub fn fusion_like(nx: usize, ny: usize, nb: usize, seed: u64) -> Csr {
    let n = nx * ny * nb;
    let mut rng = Rng64::new(seed);
    let node = |i: usize, j: usize| (i * ny + j) * nb;
    let mut c = Coo::with_capacity(n, n, 10 * nb * n);
    // Random dense block values, diagonally dominant on the self block.
    let push_block = |c: &mut Coo, r0: usize, c0: usize, scale: f64, rng: &mut Rng64, dom: f64| {
        for a in 0..nb {
            for b in 0..nb {
                let v = scale * (rng.f64() - 0.5);
                let v = if a == b { v + dom } else { v };
                if v != 0.0 {
                    c.push(r0 + a, c0 + b, v);
                }
            }
        }
    };
    for i in 0..nx {
        for j in 0..ny {
            let r0 = node(i, j);
            // Self block: dominant diagonal keeps the matrix factorisable.
            push_block(&mut c, r0, r0, 1.0, &mut rng, 12.0 * nb as f64);
            // 8 neighbours (symmetric pattern, unsymmetric values).
            for (di, dj) in [
                (-1i64, -1i64),
                (-1, 0),
                (-1, 1),
                (0, -1),
                (0, 1),
                (1, -1),
                (1, 0),
                (1, 1),
            ] {
                let (ni, nj) = (i as i64 + di, j as i64 + dj);
                if ni >= 0 && ni < nx as i64 && nj >= 0 && nj < ny as i64 {
                    let c0 = node(ni as usize, nj as usize);
                    push_block(&mut c, r0, c0, 1.0, &mut rng, 0.0);
                }
            }
            // Upwind-only convective block at distance 2 in +x: breaks
            // pattern symmetry (no mirrored block is added).
            if i + 2 < nx {
                let c0 = node(i + 2, j);
                push_block(&mut c, r0, c0, 0.5, &mut rng, 0.0);
            }
        }
    }
    c.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::avg_nnz_per_row;

    #[test]
    fn pattern_is_unsymmetric() {
        let a = fusion_like(8, 8, 3, 7);
        assert!(
            !a.pattern_symmetric(),
            "fusion analogue must have unsymmetric pattern"
        );
    }

    #[test]
    fn density_matches_fingerprint() {
        let a = fusion_like(10, 10, 7, 1);
        let d = avg_nnz_per_row(&a);
        // Interior target ~70; boundary effects pull the average down.
        assert!(d > 45.0 && d <= 71.0, "avg nnz/row {d}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = fusion_like(5, 5, 2, 42);
        let b = fusion_like(5, 5, 2, 42);
        assert_eq!(a, b);
        let c = fusion_like(5, 5, 2, 43);
        assert!(a != c, "different seeds must differ");
    }

    #[test]
    fn block_structure_sizes() {
        let a = fusion_like(4, 4, 3, 0);
        assert_eq!(a.nrows(), 4 * 4 * 3);
    }
}
