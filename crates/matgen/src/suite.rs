//! The paper's Table-I matrix suite, as named synthetic analogues.

use sparsekit::Csr;

use crate::circuit::{asic_like, g3_like};
use crate::fusion::fusion_like;
use crate::stencil::{cavity3d, cavity3d_graded};

/// The seven test matrices of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatrixKind {
    /// Accelerator cavity, 1.1M rows, 39 nnz/row, symmetric, indefinite.
    Tdr190k,
    /// Accelerator cavity, 2.7M rows, 41 nnz/row, symmetric, indefinite.
    Tdr455k,
    /// Accelerator cavity (quadratic elements), 42 nnz/row.
    DdsQuad,
    /// Accelerator cavity (linear elements), 16 nnz/row.
    DdsLinear,
    /// Tokamak fusion (CEMM), 70 nnz/row, unsymmetric pattern.
    Matrix211,
    /// Circuit simulation, ~2 nnz/row, quasi-dense rails.
    Asic680ks,
    /// Circuit simulation (power grid), ~5 nnz/row, SPD.
    G3Circuit,
}

impl MatrixKind {
    /// All seven kinds, in Table-I order.
    pub const ALL: [MatrixKind; 7] = [
        MatrixKind::Tdr190k,
        MatrixKind::Tdr455k,
        MatrixKind::DdsQuad,
        MatrixKind::DdsLinear,
        MatrixKind::Matrix211,
        MatrixKind::Asic680ks,
        MatrixKind::G3Circuit,
    ];

    /// The paper's name of the matrix.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixKind::Tdr190k => "tdr190k",
            MatrixKind::Tdr455k => "tdr455k",
            MatrixKind::DdsQuad => "dds.quad",
            MatrixKind::DdsLinear => "dds.linear",
            MatrixKind::Matrix211 => "matrix211",
            MatrixKind::Asic680ks => "ASIC_680ks",
            MatrixKind::G3Circuit => "G3_circuit",
        }
    }
}

/// Generation scale: analogue sizes are reduced from the paper's
/// million-row originals to workstation scale (see DESIGN.md §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for unit/integration tests (n ≈ 2–10 k).
    Test,
    /// Benchmark instances for the experiment harnesses (n ≈ 30–130 k).
    Bench,
}

/// Generates the analogue of a Table-I matrix at the given scale.
///
/// All generators are deterministic.
pub fn generate(kind: MatrixKind, scale: Scale) -> Csr {
    match (kind, scale) {
        // Cavity matrices: indefinite high-order 3-D stencils. The tdr
        // pair is graded (locally refined), which is what produces the
        // NGD nnz-imbalance of Fig. 3.
        (MatrixKind::Tdr190k, Scale::Test) => cavity3d_graded(14, 14, 14, 4.0, 0.34),
        (MatrixKind::Tdr190k, Scale::Bench) => cavity3d_graded(30, 30, 30, 4.0, 0.34),
        (MatrixKind::Tdr455k, Scale::Test) => cavity3d_graded(18, 18, 18, 4.0, 0.34),
        (MatrixKind::Tdr455k, Scale::Bench) => cavity3d_graded(38, 38, 38, 4.0, 0.34),
        (MatrixKind::DdsQuad, Scale::Test) => cavity3d(12, 12, 12, 2.0, true),
        (MatrixKind::DdsQuad, Scale::Bench) => cavity3d(26, 26, 26, 2.0, true),
        (MatrixKind::DdsLinear, Scale::Test) => {
            // Linear elements: 7-pt + a few diagonal couplings (~16/row).
            let offs = vec![
                (1i64, 0i64, 0i64, -1.0),
                (0, 1, 0, -1.0),
                (0, 0, 1, -1.0),
                (1, 1, 0, -0.5),
                (0, 1, 1, -0.5),
                (1, 0, 1, -0.5),
                (1, 1, 1, -0.25),
            ];
            crate::stencil::stencil3d(16, 16, 16, &offs, 5.0)
        }
        (MatrixKind::DdsLinear, Scale::Bench) => {
            let offs = vec![
                (1i64, 0i64, 0i64, -1.0),
                (0, 1, 0, -1.0),
                (0, 0, 1, -1.0),
                (1, 1, 0, -0.5),
                (0, 1, 1, -0.5),
                (1, 0, 1, -0.5),
                (1, 1, 1, -0.25),
            ];
            crate::stencil::stencil3d(34, 34, 34, &offs, 5.0)
        }
        (MatrixKind::Matrix211, Scale::Test) => fusion_like(16, 16, 7, 211),
        (MatrixKind::Matrix211, Scale::Bench) => fusion_like(44, 44, 7, 211),
        (MatrixKind::Asic680ks, Scale::Test) => asic_like(6_000, 680),
        (MatrixKind::Asic680ks, Scale::Bench) => asic_like(40_000, 680),
        (MatrixKind::G3Circuit, Scale::Test) => g3_like(60, 60),
        (MatrixKind::G3Circuit, Scale::Bench) => g3_like(220, 220),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::avg_nnz_per_row;

    #[test]
    fn all_test_scale_matrices_generate() {
        for kind in MatrixKind::ALL {
            let a = generate(kind, Scale::Test);
            assert!(a.nrows() > 1000, "{} too small: {}", kind.name(), a.nrows());
            assert_eq!(a.nrows(), a.ncols());
            assert!(
                a.nnz() > a.nrows(),
                "{} must be more than diagonal",
                kind.name()
            );
        }
    }

    #[test]
    fn fingerprints_match_table1_shape() {
        // nnz/row ordering between families must follow Table I:
        // matrix211 > tdr/dds.quad > dds.linear > G3 > ASIC.
        let tdr = avg_nnz_per_row(&generate(MatrixKind::Tdr190k, Scale::Test));
        let m211 = avg_nnz_per_row(&generate(MatrixKind::Matrix211, Scale::Test));
        let lin = avg_nnz_per_row(&generate(MatrixKind::DdsLinear, Scale::Test));
        let g3 = avg_nnz_per_row(&generate(MatrixKind::G3Circuit, Scale::Test));
        let asic = avg_nnz_per_row(&generate(MatrixKind::Asic680ks, Scale::Test));
        assert!(m211 > tdr, "fusion denser than cavity ({m211} vs {tdr})");
        assert!(tdr > lin, "quad cavity denser than linear ({tdr} vs {lin})");
        assert!(lin > g3, "cavity denser than power grid ({lin} vs {g3})");
        assert!(g3 > asic, "grid denser than ASIC ({g3} vs {asic})");
    }

    #[test]
    fn symmetry_fingerprints() {
        assert!(generate(MatrixKind::Tdr190k, Scale::Test).value_symmetric(1e-12));
        assert!(!generate(MatrixKind::Matrix211, Scale::Test).pattern_symmetric());
        assert!(generate(MatrixKind::Asic680ks, Scale::Test).pattern_symmetric());
        assert!(generate(MatrixKind::G3Circuit, Scale::Test).value_symmetric(1e-12));
    }

    #[test]
    fn bench_scale_is_larger() {
        let t = generate(MatrixKind::G3Circuit, Scale::Test);
        let b = generate(MatrixKind::G3Circuit, Scale::Bench);
        assert!(b.nrows() > 10 * t.nrows());
    }
}
