//! Circuit-simulation analogues (`ASIC_680ks`, `G3_circuit`).

use sparsekit::{Coo, Csr, Rng64};

/// `ASIC_680ks` analogue: extremely sparse (~2–3 nnz/row), irregular,
/// pattern-symmetric but value-unsymmetric, with a handful of
/// **quasi-dense power-rail rows** — the feature that motivates the
/// §V-B(c) quasi-dense-row filter.
pub fn asic_like(n: usize, seed: u64) -> Csr {
    assert!(n >= 64, "asic_like needs a reasonable size");
    let mut rng = Rng64::new(seed);
    let mut c = Coo::with_capacity(n, n, 4 * n);
    // Diagonal (always present in circuit matrices).
    for i in 0..n {
        c.push(i, i, 1.0 + rng.f64());
    }
    // Sparse random two-terminal devices: symmetric pattern, unsymmetric
    // values (e.g. controlled sources).
    let devices = n; // ~1 extra entry pair per node on average
    for _ in 0..devices {
        let i = rng.below(n);
        let j = rng.below(n);
        if i != j {
            c.push(i, j, -(0.1 + rng.f64()));
            c.push(j, i, -(0.1 + 0.5 * rng.f64()));
        }
    }
    // Power rails: a few rows connected to ~n/64 random nodes.
    let rails = 4.max(n / 20_000);
    for r in 0..rails {
        let row = r * (n / rails);
        let fan = n / 64;
        for _ in 0..fan {
            let j = rng.below(n);
            if j != row {
                c.push(row, j, -0.01 - 0.01 * rng.f64());
                c.push(j, row, -0.01 - 0.005 * rng.f64());
            }
        }
    }
    c.to_csr()
}

/// `G3_circuit` analogue: a 2-D 5-point grid (power-grid style), SPD,
/// ~5 nnz/row — delegated to the stencil generator.
pub fn g3_like(nx: usize, ny: usize) -> Csr {
    crate::stencil::laplace2d(nx, ny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::avg_nnz_per_row;

    #[test]
    fn asic_is_ultra_sparse() {
        let a = asic_like(4096, 3);
        let d = avg_nnz_per_row(&a);
        assert!(d < 6.0, "avg nnz/row {d} too dense for ASIC analogue");
        assert!(a.pattern_symmetric());
        assert!(!a.value_symmetric(1e-12));
    }

    #[test]
    fn asic_has_quasi_dense_rows() {
        let a = asic_like(4096, 3);
        let max_row = (0..a.nrows()).map(|i| a.row_nnz(i)).max().unwrap();
        assert!(max_row > 30, "expected a power-rail row, max {max_row}");
    }

    #[test]
    fn asic_deterministic() {
        assert_eq!(asic_like(512, 9), asic_like(512, 9));
    }

    #[test]
    fn g3_is_spd_shaped() {
        let a = g3_like(20, 20);
        assert!(a.value_symmetric(1e-14));
        assert!(avg_nnz_per_row(&a) < 5.01);
    }
}
