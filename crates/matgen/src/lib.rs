//! `matgen` — synthetic test-matrix generators.
//!
//! The paper evaluates on seven matrices from accelerator-cavity
//! modelling, tokamak fusion simulation and circuit simulation (Table I).
//! Those inputs are not redistributable here, so this crate generates
//! *structural analogues* that match each matrix's fingerprint —
//! nnz/row, pattern/value symmetry, definiteness and the qualitative
//! sparsity character that drives the partitioning and reordering
//! behaviour under study. See `DESIGN.md` §3 for the substitution
//! rationale; real Matrix Market files are accepted via
//! `sparsekit::io::read_matrix_market` whenever available.

//! # Example
//!
//! ```
//! use matgen::{generate, MatrixKind, Scale};
//!
//! let a = generate(MatrixKind::G3Circuit, Scale::Test);
//! assert!(a.nrows() > 1000);
//! assert!(a.value_symmetric(1e-12)); // G3_circuit is SPD
//! ```

pub mod circuit;
pub mod fusion;
pub mod sequence;
pub mod stencil;
pub mod suite;

pub use sequence::sequence;
pub use stencil::{laplace2d, laplace3d};
pub use suite::{generate, MatrixKind, Scale};
