//! Regular-grid stencil matrices (Laplacians and cavity-like shifted
//! operators).

use sparsekit::{Coo, Csr};

/// 2-D 5-point Laplacian on an `nx × ny` grid (SPD, ~5 nnz/row) —
/// the `G3_circuit` analogue family.
pub fn laplace2d(nx: usize, ny: usize) -> Csr {
    let idx = |i: usize, j: usize| i * ny + j;
    let n = nx * ny;
    let mut c = Coo::with_capacity(n, n, 5 * n);
    for i in 0..nx {
        for j in 0..ny {
            c.push(idx(i, j), idx(i, j), 4.0);
            if i + 1 < nx {
                c.push_sym(idx(i, j), idx(i + 1, j), -1.0);
            }
            if j + 1 < ny {
                c.push_sym(idx(i, j), idx(i, j + 1), -1.0);
            }
        }
    }
    c.to_csr()
}

/// 3-D 7-point Laplacian on an `nx × ny × nz` grid (SPD, ~7 nnz/row).
pub fn laplace3d(nx: usize, ny: usize, nz: usize) -> Csr {
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let n = nx * ny * nz;
    let mut c = Coo::with_capacity(n, n, 7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                c.push(idx(i, j, k), idx(i, j, k), 6.0);
                if i + 1 < nx {
                    c.push_sym(idx(i, j, k), idx(i + 1, j, k), -1.0);
                }
                if j + 1 < ny {
                    c.push_sym(idx(i, j, k), idx(i, j + 1, k), -1.0);
                }
                if k + 1 < nz {
                    c.push_sym(idx(i, j, k), idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    c.to_csr()
}

/// General symmetric stencil on a 3-D grid over the given neighbour
/// offsets (each `(di,dj,dk)` with its coupling value; the mirrored
/// offset is added automatically). `diag` is the diagonal value.
pub fn stencil3d(
    nx: usize,
    ny: usize,
    nz: usize,
    offsets: &[(i64, i64, i64, f64)],
    diag: f64,
) -> Csr {
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let n = nx * ny * nz;
    let mut c = Coo::with_capacity(n, n, (2 * offsets.len() + 1) * n);
    for i in 0..nx as i64 {
        for j in 0..ny as i64 {
            for k in 0..nz as i64 {
                let row = idx(i as usize, j as usize, k as usize);
                c.push(row, row, diag);
                for &(di, dj, dk, v) in offsets {
                    let (ni, nj, nk) = (i + di, j + dj, k + dk);
                    if ni >= 0
                        && ni < nx as i64
                        && nj >= 0
                        && nj < ny as i64
                        && nk >= 0
                        && nk < nz as i64
                    {
                        let col = idx(ni as usize, nj as usize, nk as usize);
                        c.push_sym(row, col, v);
                    }
                }
            }
        }
    }
    c.to_csr()
}

/// Offsets of the upper half of a 27-point stencil (13 neighbours; the
/// mirrored half is implied by `push_sym`).
pub fn offsets_27pt(v: f64) -> Vec<(i64, i64, i64, f64)> {
    let mut out = Vec::new();
    for di in -1i64..=1 {
        for dj in -1i64..=1 {
            for dk in -1i64..=1 {
                if (di, dj, dk) > (0, 0, 0) {
                    out.push((di, dj, dk, v));
                }
            }
        }
    }
    out
}

/// Cavity-analogue operator: a high-order 3-D stencil shifted to be
/// **indefinite**, mimicking the `tdr` / `dds` electromagnetic matrices
/// (`K − σM` in a generalized eigenproblem context; pattern- and
/// value-symmetric, not positive definite).
///
/// `extra_axial` adds distance-2 couplings **along x only**, raising
/// nnz/row from ~27 toward the Table-I ~37–42 while keeping y/z plane
/// separators one layer thick (isotropic distance-2 couplings would
/// force every separator to be two layers deep and make the Schur
/// complement unrealistically dense relative to the paper's
/// finite-element matrices — see DESIGN.md §3).
pub fn cavity3d(nx: usize, ny: usize, nz: usize, shift: f64, extra_axial: bool) -> Csr {
    let mut offs = offsets_27pt(-1.0);
    if extra_axial {
        offs.push((2, 0, 0, -0.25));
        offs.push((2, 1, 0, -0.125));
        offs.push((2, -1, 0, -0.125));
        offs.push((2, 0, 1, -0.125));
        offs.push((2, 0, -1, -0.125));
    }
    // Diagonal 26 balances the 27-pt part; subtracting `shift` pushes
    // low-frequency eigenvalues negative (indefiniteness).
    stencil3d(nx, ny, nz, &offs, 26.0 - shift)
}

/// Graded cavity-analogue operator: like [`cavity3d`], but with a
/// **refined region** (`x < nx·refined_frac`) carrying a much denser
/// coupling pattern, as in locally-refined finite-element cavity meshes.
///
/// This heterogeneity is what gives nested dissection its characteristic
/// *nnz imbalance* in the paper's Fig. 3: NGD balances vertex counts per
/// bisection, so subdomains inside the refined region end up with far
/// more nonzeros than the rest — precisely what RHB's dynamic `w1`
/// weights repair.
pub fn cavity3d_graded(nx: usize, ny: usize, nz: usize, shift: f64, refined_frac: f64) -> Csr {
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let n = nx * ny * nz;
    let x_cut = ((nx as f64) * refined_frac) as i64;
    let base = offsets_27pt(-1.0);
    // Refined-region extras: x-directional distance-2 couplings plus
    // in-plane second neighbours (high-order elements in the refined
    // zone).
    let extra: Vec<(i64, i64, i64, f64)> = vec![
        (2, 0, 0, -0.25),
        (2, 1, 0, -0.125),
        (2, -1, 0, -0.125),
        (2, 0, 1, -0.125),
        (2, 0, -1, -0.125),
        (0, 2, 0, -0.25),
        (0, 0, 2, -0.25),
        (0, 2, 1, -0.125),
        (0, 1, 2, -0.125),
        (0, 2, 2, -0.0625),
        (1, 2, 0, -0.125),
        (1, 0, 2, -0.125),
    ];
    let mut c = Coo::with_capacity(n, n, 40 * n);
    for i in 0..nx as i64 {
        for j in 0..ny as i64 {
            for k in 0..nz as i64 {
                let row = idx(i as usize, j as usize, k as usize);
                c.push(row, row, 26.0 - shift);
                let in_refined = i < x_cut;
                let offs: &[(i64, i64, i64, f64)] = if in_refined { &extra } else { &[] };
                for &(di, dj, dk, v) in base.iter().chain(offs) {
                    let (ni, nj, nk) = (i + di, j + dj, k + dk);
                    if ni >= 0
                        && ni < nx as i64
                        && nj >= 0
                        && nj < ny as i64
                        && nk >= 0
                        && nk < nz as i64
                    {
                        let col = idx(ni as usize, nj as usize, nk as usize);
                        c.push_sym(row, col, v);
                    }
                }
            }
        }
    }
    c.to_csr()
}

/// Counts the average number of nonzeros per row.
pub fn avg_nnz_per_row(a: &Csr) -> f64 {
    if a.nrows() == 0 {
        0.0
    } else {
        a.nnz() as f64 / a.nrows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace2d_shape_and_symmetry() {
        let a = laplace2d(7, 5);
        assert_eq!(a.nrows(), 35);
        assert!(a.pattern_symmetric());
        assert!(a.value_symmetric(1e-14));
        // Interior rows have 5 nonzeros.
        assert!(avg_nnz_per_row(&a) > 4.0 && avg_nnz_per_row(&a) <= 5.0);
    }

    #[test]
    fn laplace3d_interior_rows_have_seven() {
        let a = laplace3d(5, 5, 5);
        let mid = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.row_nnz(mid), 7);
        assert!(a.value_symmetric(1e-14));
    }

    #[test]
    fn stencil27_interior_rows() {
        let a = stencil3d(5, 5, 5, &offsets_27pt(-1.0), 26.0);
        let mid = (2 * 5 + 2) * 5 + 2;
        assert_eq!(a.row_nnz(mid), 27);
        assert!(a.pattern_symmetric());
    }

    #[test]
    fn cavity_is_denser_with_axial_extras() {
        let base = cavity3d(8, 8, 8, 3.0, false);
        let rich = cavity3d(8, 8, 8, 3.0, true);
        assert!(avg_nnz_per_row(&rich) > avg_nnz_per_row(&base));
        assert!(rich.value_symmetric(1e-14));
        // Table-I target: between ~30 and 42 nnz/row at this size.
        let d = avg_nnz_per_row(&rich);
        assert!(d > 25.0 && d < 42.0, "avg nnz/row {d}");
    }

    #[test]
    fn cavity_shift_makes_diagonal_smaller() {
        let a = cavity3d(4, 4, 4, 0.0, false);
        let b = cavity3d(4, 4, 4, 5.0, false);
        assert_eq!(a.get(0, 0) - 5.0, b.get(0, 0));
    }
}
