//! Matrix sequences: value drift over a fixed sparsity pattern.
//!
//! Sequence solvers (time-stepping, parameter continuation, Newton
//! chains on a fixed mesh) factor the same *pattern* many times with
//! different values. [`sequence`] models that workload: from a base
//! matrix it derives `steps` matrices whose patterns are all identical
//! to the base (bit-for-bit `indptr`/`indices`) while every value walks
//! deterministically away from its base value, further at each step.
//!
//! The perturbation is symmetric — entry `(i,j)` and entry `(j,i)`
//! receive the same multiplier — so a value-symmetric base stays
//! value-symmetric along the whole sequence, and it is derived from an
//! FNV-1a hash of the *unordered* index pair and the step, so the
//! sequence is reproducible across runs, platforms, and storage
//! orders.

use sparsekit::{Csr, Fnv64};

/// Deterministic noise in `[-1, 1]` for the unordered pair `{i, j}` at
/// `step`; symmetric in `i`/`j` so symmetric matrices stay symmetric.
fn pair_noise(i: usize, j: usize, step: usize) -> f64 {
    let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
    let mut h = Fnv64::new();
    h.write_u64(lo as u64);
    h.write_u64(hi as u64);
    h.write_u64(step as u64);
    // Map the top 53 bits to [0, 1), then to [-1, 1].
    let u = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * u - 1.0
}

/// A sequence of `steps` matrices sharing `base`'s exact sparsity
/// pattern. Step 0 is a clone of `base`; step `t` scales every entry
/// `(i,j)` by `1 + drift·t·noise(i,j,t)` with deterministic noise in
/// `[-1, 1]`, so values drift further from the base each step while
/// the pattern never changes. `drift` is the per-step relative
/// perturbation amplitude (e.g. `0.01` for a gentle 1% walk).
///
/// Panics if `steps` is 0.
pub fn sequence(base: &Csr, steps: usize, drift: f64) -> Vec<Csr> {
    assert!(steps > 0, "a sequence needs at least one step");
    let mut out = Vec::with_capacity(steps);
    out.push(base.clone());
    for t in 1..steps {
        let mut a = base.clone();
        let indptr = a.indptr().to_vec();
        let indices = a.indices().to_vec();
        let scale = drift * t as f64;
        let values = a.values_mut();
        for i in 0..indptr.len() - 1 {
            for p in indptr[i]..indptr[i + 1] {
                values[p] *= 1.0 + scale * pair_noise(i, indices[p], t);
            }
        }
        out.push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::{laplace2d, laplace3d};
    use sparsekit::{csr_pattern_fingerprint, csr_value_fingerprint};

    #[test]
    fn pattern_is_frozen_and_values_drift() {
        let base = laplace2d(12, 12);
        let seq = sequence(&base, 4, 0.05);
        assert_eq!(seq.len(), 4);
        let fp = csr_pattern_fingerprint(&base);
        assert_eq!(csr_value_fingerprint(&seq[0]), csr_value_fingerprint(&base));
        for (t, a) in seq.iter().enumerate() {
            assert_eq!(
                csr_pattern_fingerprint(a),
                fp,
                "step {t} changed the pattern"
            );
        }
        for t in 1..seq.len() {
            assert_ne!(
                csr_value_fingerprint(&seq[t]),
                csr_value_fingerprint(&seq[t - 1]),
                "step {t} did not move the values"
            );
        }
    }

    #[test]
    fn symmetric_bases_stay_symmetric() {
        let base = laplace3d(5, 4, 3);
        assert!(base.value_symmetric(0.0));
        for (t, a) in sequence(&base, 5, 0.2).iter().enumerate() {
            assert!(a.value_symmetric(0.0), "step {t} broke symmetry");
        }
    }

    #[test]
    fn sequences_are_reproducible() {
        let base = laplace2d(9, 7);
        let s1 = sequence(&base, 3, 0.1);
        let s2 = sequence(&base, 3, 0.1);
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(csr_value_fingerprint(a), csr_value_fingerprint(b));
        }
    }

    #[test]
    fn drift_amplitude_is_bounded() {
        let base = laplace2d(8, 8);
        let drift = 0.01;
        let seq = sequence(&base, 4, drift);
        for (t, a) in seq.iter().enumerate() {
            let bound = drift * t as f64 + 1e-15;
            for (v, v0) in a.values().iter().zip(base.values()) {
                let rel = (v - v0).abs() / v0.abs();
                assert!(rel <= bound, "step {t}: relative change {rel} > {bound}");
            }
        }
    }
}
