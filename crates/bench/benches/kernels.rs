//! Criterion micro-benchmarks of the computational kernels underneath
//! the experiments: sparse products, subdomain LU, and the blocked
//! triangular solves whose block-size trade-off Fig. 5 studies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use matgen::stencil::{laplace2d, laplace3d};
use pdslin::interface::ehat_columns_pivot;
use pdslin::subdomain::factor_domain;
use slu::blocked::solve_in_blocks;
use slu::trisolve::SolveWorkspace;
use sparsekit::spgemm::spgemm;
use sparsekit::Perm;

fn bench_sparsekit(c: &mut Criterion) {
    let a = laplace2d(60, 60);
    c.bench_function("sparsekit/matvec_3600", |b| {
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        b.iter(|| a.matvec_into(black_box(&x), &mut y));
    });
    c.bench_function("sparsekit/transpose_3600", |b| {
        b.iter(|| black_box(a.transpose()));
    });
    c.bench_function("sparsekit/spgemm_a_a", |b| {
        b.iter(|| black_box(spgemm(&a, &a)));
    });
    c.bench_function("sparsekit/symmetrize_abs", |b| {
        b.iter(|| black_box(a.symmetrize_abs()));
    });
}

fn bench_lu(c: &mut Criterion) {
    let a = laplace3d(10, 10, 10);
    c.bench_function("slu/lu_natural_1000", |b| {
        let p = Perm::identity(a.nrows());
        b.iter(|| {
            black_box(
                slu::LuFactors::factorize(&a, &p, &slu::LuConfig::default()).unwrap(),
            )
        });
    });
    c.bench_function("slu/lu_mindeg_postorder_1000", |b| {
        b.iter(|| black_box(factor_domain(&a, 0.1).unwrap()));
    });
}

fn bench_blocked_trisolve(c: &mut Criterion) {
    // One PDSLin subdomain of the tdr190k analogue, solving Ê's columns.
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    let part = pdslin::compute_partition(&a, 8, &pdslin::PartitionerKind::Ngd);
    let sys = pdslin::extract_dbbd(&a, part);
    let dom = &sys.domains[0];
    let fd = factor_domain(&dom.d, 0.1).unwrap();
    let cols = ehat_columns_pivot(&fd, dom);
    let mut group = c.benchmark_group("slu/blocked_trisolve");
    for &bs in &[1usize, 10, 60, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            let mut ws = SolveWorkspace::new(fd.lu.n());
            b.iter(|| black_box(solve_in_blocks(&fd.lu.l, true, &cols, bs, &mut ws)));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sparsekit, bench_lu, bench_blocked_trisolve
);
criterion_main!(benches);
