//! Micro-benchmarks of the computational kernels underneath the
//! experiments: sparse products, subdomain LU, and the blocked
//! triangular solves whose block-size trade-off Fig. 5 studies.
//!
//! Plain `main` harness (`harness = false`): run with `cargo bench`.

use std::hint::black_box;

use matgen::stencil::{laplace2d, laplace3d};
use pdslin::interface::ehat_columns_pivot;
use pdslin::subdomain::factor_domain;
use pdslin_bench::bench_case;
use slu::blocked::solve_in_blocks;
use sparsekit::spgemm::spgemm;
use sparsekit::Perm;

fn bench_sparsekit() {
    let a = laplace2d(60, 60);
    let x = vec![1.0; a.ncols()];
    let mut y = vec![0.0; a.nrows()];
    bench_case("sparsekit/matvec_3600", || {
        a.matvec_into(black_box(&x), &mut y)
    });
    bench_case("sparsekit/transpose_3600", || {
        black_box(a.transpose());
    });
    bench_case("sparsekit/spgemm_a_a", || {
        black_box(spgemm(&a, &a));
    });
    bench_case("sparsekit/symmetrize_abs", || {
        black_box(a.symmetrize_abs());
    });
}

fn bench_lu() {
    let a = laplace3d(10, 10, 10);
    let p = Perm::identity(a.nrows());
    bench_case("slu/lu_natural_1000", || {
        black_box(slu::LuFactors::factorize(&a, &p, &slu::LuConfig::default()).unwrap());
    });
    bench_case("slu/lu_mindeg_postorder_1000", || {
        black_box(factor_domain(&a, 0.1).unwrap());
    });
}

fn bench_blocked_trisolve() {
    // One PDSLin subdomain of the tdr190k analogue, solving Ê's columns.
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    let part = pdslin::compute_partition(&a, 8, &pdslin::PartitionerKind::Ngd);
    let sys = pdslin::extract_dbbd(&a, part);
    let dom = &sys.domains[0];
    let fd = factor_domain(&dom.d, 0.1).unwrap();
    let cols = ehat_columns_pivot(&fd, dom);
    for &bs in &[1usize, 10, 60, 150] {
        bench_case(&format!("slu/blocked_trisolve/{bs}"), || {
            black_box(solve_in_blocks(&fd.lu.l, true, &cols, bs));
        });
    }
}

fn main() {
    bench_sparsekit();
    bench_lu();
    bench_blocked_trisolve();
}
