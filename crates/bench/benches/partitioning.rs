//! Criterion benchmarks of the partitioners themselves: NGD vs RHB
//! (all three cut metrics) on the tdr190k analogue, plus the
//! fill-reducing orderings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use graphpart::{min_degree_order, rcm_order, Graph};
use hypergraph::{CutMetric, RhbConfig};
use pdslin::{compute_partition, PartitionerKind};

fn bench_partitioners(c: &mut Criterion) {
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    c.bench_function("partition/ngd_k8", |b| {
        b.iter(|| black_box(compute_partition(&a, 8, &PartitionerKind::Ngd)));
    });
    for (name, metric) in [
        ("con1", CutMetric::Con1),
        ("cnet", CutMetric::Cnet),
        ("soed", CutMetric::Soed),
    ] {
        c.bench_function(&format!("partition/rhb_{name}_k8"), |b| {
            let cfg = RhbConfig { metric, ..Default::default() };
            b.iter(|| black_box(compute_partition(&a, 8, &PartitionerKind::Rhb(cfg))));
        });
    }
}

fn bench_orderings(c: &mut Criterion) {
    let a = matgen::stencil::laplace3d(12, 12, 12);
    let g = Graph::from_matrix(&a);
    c.bench_function("ordering/min_degree_1728", |b| {
        b.iter(|| black_box(min_degree_order(&g)));
    });
    c.bench_function("ordering/rcm_1728", |b| {
        b.iter(|| black_box(rcm_order(&g)));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partitioners, bench_orderings
);
criterion_main!(benches);
