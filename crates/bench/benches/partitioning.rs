//! Benchmarks of the partitioners themselves: NGD vs RHB (all three
//! cut metrics) on the tdr190k analogue, plus the fill-reducing
//! orderings.
//!
//! Plain `main` harness (`harness = false`): run with `cargo bench`.

use std::hint::black_box;

use graphpart::{min_degree_order, rcm_order, Graph};
use hypergraph::{CutMetric, RhbConfig};
use pdslin::{compute_partition, PartitionerKind};
use pdslin_bench::bench_case;

fn bench_partitioners() {
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    bench_case("partition/ngd_k8", || {
        black_box(compute_partition(&a, 8, &PartitionerKind::Ngd));
    });
    for (name, metric) in [
        ("con1", CutMetric::Con1),
        ("cnet", CutMetric::Cnet),
        ("soed", CutMetric::Soed),
    ] {
        let cfg = RhbConfig {
            metric,
            ..Default::default()
        };
        bench_case(&format!("partition/rhb_{name}_k8"), || {
            black_box(compute_partition(&a, 8, &PartitionerKind::Rhb(cfg)));
        });
    }
}

fn bench_orderings() {
    let a = matgen::stencil::laplace3d(12, 12, 12);
    let g = Graph::from_matrix(&a);
    bench_case("ordering/min_degree_1728", || {
        black_box(min_degree_order(&g));
    });
    bench_case("ordering/rcm_1728", || {
        black_box(rcm_order(&g));
    });
}

fn main() {
    bench_partitioners();
    bench_orderings();
}
