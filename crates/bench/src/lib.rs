//! Shared plumbing for the experiment harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §2 for the experiment index) and writes both a
//! human-readable table to stdout and a JSON record under `results/`.
//!
//! Environment knobs:
//!
//! * `PDSLIN_SCALE=test|bench` — matrix sizes (default `bench`);
//! * `PDSLIN_RESULTS=<dir>` — output directory (default `results/`).

use std::fs;
use std::path::PathBuf;

use matgen::Scale;
use serde::Serialize;

/// Scale selected via `PDSLIN_SCALE` (default: bench).
pub fn scale_from_env() -> Scale {
    match std::env::var("PDSLIN_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Bench,
    }
}

/// Results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PDSLIN_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a JSON record for one experiment.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serialize results");
    fs::write(&path, data).expect("write results file");
    eprintln!("[wrote {}]", path.display());
}

/// Partitions a matrix with NGD (k subdomains) and factors every
/// subdomain — the shared setup of the §IV / §V-B experiments (Table III,
/// Fig. 4, Fig. 5, quasi-dense study).
pub fn ngd_factored_system(
    kind: matgen::MatrixKind,
    scale: Scale,
    k: usize,
) -> (sparsekit::Csr, pdslin::DbbdSystem, Vec<pdslin::subdomain::FactoredDomain>) {
    let a = matgen::generate(kind, scale);
    let part = pdslin::compute_partition(&a, k, &pdslin::PartitionerKind::Ngd);
    let sys = pdslin::extract_dbbd(&a, part);
    let factors: Vec<_> = sys
        .domains
        .iter()
        .map(|d| pdslin::subdomain::factor_domain(&d.d, 0.1).expect("subdomain LU"))
        .collect();
    (a, sys, factors)
}

/// min / avg / max of a sequence of f64.
pub fn min_avg_max(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    (min, sum / xs.len() as f64, max)
}

/// Formats seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_avg_max_basic() {
        let (lo, av, hi) = min_avg_max(&[1.0, 2.0, 6.0]);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 6.0);
        assert!((av - 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_avg_max_empty() {
        assert_eq!(min_avg_max(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.1234), "0.123");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(123.4), "123");
    }
}
