//! Shared plumbing for the experiment harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §2 for the experiment index) and writes both a
//! human-readable table to stdout and a JSON record under `results/`.
//!
//! Environment knobs:
//!
//! * `PDSLIN_SCALE=test|bench` — matrix sizes (default `bench`);
//! * `PDSLIN_RESULTS=<dir>` — output directory (default `results/`).

use std::fs;
use std::path::PathBuf;

use matgen::Scale;

/// Scale selected via `PDSLIN_SCALE` (default: bench).
pub fn scale_from_env() -> Scale {
    match std::env::var("PDSLIN_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Bench,
    }
}

/// Results directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PDSLIN_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a JSON record (an array of row objects) for one experiment.
pub fn write_json<T: JsonRecord>(name: &str, rows: &[T]) {
    let path = results_dir().join(format!("{name}.json"));
    let body = rows
        .iter()
        .map(|r| format!("  {}", r.to_json_object()))
        .collect::<Vec<_>>();
    let data = format!("[\n{}\n]\n", body.join(",\n"));
    fs::write(&path, data).expect("write results file");
    eprintln!("[wrote {}]", path.display());
}

/// A value that knows its JSON representation. Implemented for the
/// scalar types the experiment rows use; `f64` maps NaN/Inf to `null`
/// (JSON has no non-finite numbers).
pub trait JsonValue {
    /// The JSON text of this value.
    fn to_json(&self) -> String;
}

impl JsonValue for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            format!("{self}")
        } else {
            "null".to_string()
        }
    }
}

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl JsonValue for $t {
            fn to_json(&self) -> String {
                format!("{self}")
            }
        }
    )*};
}
json_int!(usize, u64, u32, i64, i32, bool);

impl JsonValue for String {
    fn to_json(&self) -> String {
        json_escape(self)
    }
}

impl JsonValue for &str {
    fn to_json(&self) -> String {
        json_escape(self)
    }
}

impl<T: JsonValue> JsonValue for Vec<T> {
    fn to_json(&self) -> String {
        let parts: Vec<String> = self.iter().map(|v| v.to_json()).collect();
        format!("[{}]", parts.join(", "))
    }
}

/// Quotes and escapes a string for JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A row type that renders itself as one JSON object (derive it with
/// [`json_record!`]).
pub trait JsonRecord {
    /// The JSON object text of this row.
    fn to_json_object(&self) -> String;
}

/// Declares a plain-struct experiment row and implements [`JsonRecord`]
/// for it — the in-tree replacement for `#[derive(Serialize)]`.
#[macro_export]
macro_rules! json_record {
    ($(#[$meta:meta])* struct $name:ident { $($(#[$fmeta:meta])* $field:ident : $ty:ty),* $(,)? }) => {
        $(#[$meta])*
        struct $name {
            $($(#[$fmeta])* $field: $ty,)*
        }
        impl $crate::JsonRecord for $name {
            fn to_json_object(&self) -> String {
                let mut parts: Vec<String> = Vec::new();
                $(parts.push(format!(
                    "{}: {}",
                    $crate::json_escape(stringify!($field)),
                    $crate::JsonValue::to_json(&self.$field)
                ));)*
                format!("{{{}}}", parts.join(", "))
            }
        }
    };
}

/// Minimal timing harness for the `cargo bench` targets (plain `main`
/// binaries with `harness = false`): warms up once, then runs the
/// closure until ~0.2 s of wall clock or 100 iterations, whichever
/// comes first, and prints min/avg per-iteration time.
pub fn bench_case<F: FnMut()>(name: &str, mut f: F) {
    f(); // warm-up (first-touch allocation, caches)
    let budget = std::time::Duration::from_millis(200);
    let started = std::time::Instant::now();
    let mut samples = Vec::new();
    while started.elapsed() < budget && samples.len() < 100 {
        let t0 = std::time::Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let (min, avg, _max) = min_avg_max(&samples);
    println!(
        "{name:<40} {:>12} {:>12}  ({} iters)",
        fmt_bench_time(min),
        fmt_bench_time(avg),
        samples.len()
    );
}

fn fmt_bench_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

/// Partitions a matrix with NGD (k subdomains) and factors every
/// subdomain — the shared setup of the §IV / §V-B experiments (Table III,
/// Fig. 4, Fig. 5, quasi-dense study).
pub fn ngd_factored_system(
    kind: matgen::MatrixKind,
    scale: Scale,
    k: usize,
) -> (
    sparsekit::Csr,
    pdslin::DbbdSystem,
    Vec<pdslin::subdomain::FactoredDomain>,
) {
    let a = matgen::generate(kind, scale);
    let part = pdslin::compute_partition(&a, k, &pdslin::PartitionerKind::Ngd);
    let sys = pdslin::extract_dbbd(&a, part);
    let factors: Vec<_> = sys
        .domains
        .iter()
        .map(|d| pdslin::subdomain::factor_domain(&d.d, 0.1).expect("subdomain LU"))
        .collect();
    (a, sys, factors)
}

/// min / avg / max of a sequence of f64.
pub fn min_avg_max(xs: &[f64]) -> (f64, f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    (min, sum / xs.len() as f64, max)
}

/// Formats seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_avg_max_basic() {
        let (lo, av, hi) = min_avg_max(&[1.0, 2.0, 6.0]);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 6.0);
        assert!((av - 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_avg_max_empty() {
        assert_eq!(min_avg_max(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.1234), "0.123");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(123.4), "123");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "\"plain\"");
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_values_render() {
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!(42usize.to_json(), "42");
        assert_eq!(true.to_json(), "true");
        assert_eq!(vec![1usize, 2, 3].to_json(), "[1, 2, 3]");
    }

    json_record! {
        struct DemoRow {
            name: String,
            n: usize,
            secs: f64,
        }
    }

    #[test]
    fn json_record_macro_renders_object() {
        let r = DemoRow {
            name: "laplace".to_string(),
            n: 100,
            secs: 0.5,
        };
        assert_eq!(
            r.to_json_object(),
            "{\"name\": \"laplace\", \"n\": 100, \"secs\": 0.5}"
        );
    }
}
