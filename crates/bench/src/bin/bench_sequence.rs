//! Sequence-solve benchmark: incremental numeric refactorization
//! against paying a full setup per step.
//!
//! Models the time-stepping / continuation workload of the paper's
//! Newton–Krylov consumers: a drifting sequence of matrices sharing one
//! sparsity pattern. Step 0 pays a full `Pdslin::setup`; every later
//! step is applied twice — once through `update_values` (pivot replay,
//! symbolic state reused wholesale) and once through a fresh full setup
//! — and the wall-clock ratio is recorded as `speedup`.
//!
//! Correctness is asserted in-process, the same policy as
//! `bench_solve`: replaying *identical* values must reproduce the
//! original solve bit-for-bit (the `bit_identical` column), and every
//! per-step solve must converge on its own drifted matrix. A second
//! section (`kernel = "stale_probe"`) walks values *backwards* from a
//! heavily perturbed setup matrix under a tight `SequencePolicy`, which
//! must trip the staleness fallback at least once so the recorded run
//! always exercises the full-rebuild recovery path. Timing ratios are
//! recorded but never gated — CI boxes make them meaningless.

use matgen::Scale;
use pdslin::{Pdslin, PdslinConfig, SequencePolicy};
use sparsekit::Csr;
use std::time::Instant;

pdslin_bench::json_record! {
    struct SequenceRow {
        problem: String,
        kernel: String,
        workers: usize,
        step: usize,
        refactor_seconds: f64,
        full_setup_seconds: f64,
        speedup: f64,
        bit_identical: bool,
        refactorized: bool,
        stale_fallbacks: usize,
        iterations: usize,
    }
}

const WORKERS: [usize; 3] = [1, 2, 4];

fn rhs_for(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + 0.25 * ((i * 2_654_435_761 % 97) as f64 / 97.0))
        .collect()
}

/// Deterministic multiplicative perturbation of the values (pattern
/// untouched). Large `scale` makes the matrix numerically very
/// different from `a`, which is how the stale probe manufactures a
/// preconditioner that is bad for the *later* matrices in its sequence.
fn drift(a: &Csr, scale: f64) -> Csr {
    let mut out = a.clone();
    for (t, v) in out.values_mut().iter_mut().enumerate() {
        *v *= 1.0 + scale * ((t % 13) as f64 - 6.0) / 6.0;
    }
    out
}

/// Per-step replay-vs-full-setup timing on a forward-drifting sequence.
fn bench_refactorize(
    rows: &mut Vec<SequenceRow>,
    problem: &str,
    a: &Csr,
    steps: usize,
    drift_rate: f64,
) {
    let b = rhs_for(a.nrows());
    let mats = matgen::sequence(a, steps, drift_rate);
    for w in WORKERS {
        std::env::set_var(pdslin::par::THREADS_ENV, w.to_string());
        // `k = 2` puts most of the per-step cost in the domain
        // factorizations, where the pivot replay has the most to reuse;
        // the 1e-5 drop tolerance is the paper's practical operating
        // point and keeps the (shared, non-reusable) Schur sparse
        // products from dominating either side of the ratio.
        let cfg = PdslinConfig {
            k: 2,
            interface_drop_tol: 1e-5,
            schur_drop_tol: 1e-5,
            parallel: w > 1,
            ..Default::default()
        };

        let t0 = Instant::now();
        let mut solver = Pdslin::setup(&mats[0], cfg).expect("setup");
        let setup0 = t0.elapsed().as_secs_f64();
        let base = solver.solve(&b).expect("baseline solve");

        // Bit-identity gate: replaying the exact same values must leave
        // the factors — and therefore the solve — bitwise unchanged.
        let t0 = Instant::now();
        let upd = solver.update_values(&mats[0]).expect("identity update");
        let replay0 = t0.elapsed().as_secs_f64();
        assert_eq!(upd.rebuilt, 0, "identity update must replay every factor");
        let again = solver.solve(&b).expect("post-replay solve");
        let bit_identical = base.x == again.x && base.iterations == again.iterations;
        assert!(
            bit_identical,
            "replaying identical values must be bit-identical (workers={w})"
        );
        rows.push(SequenceRow {
            problem: problem.to_string(),
            kernel: "refactorize".to_string(),
            workers: w,
            step: 0,
            refactor_seconds: replay0,
            full_setup_seconds: setup0,
            speedup: setup0 / replay0,
            bit_identical,
            refactorized: upd.rebuilt == 0,
            stale_fallbacks: 0,
            iterations: again.iterations,
        });

        for (t, m) in mats.iter().enumerate().skip(1) {
            let t0 = Instant::now();
            let upd = solver.update_values(m).expect("update");
            let refactor_seconds = t0.elapsed().as_secs_f64();
            let out = solver.solve(&b).expect("solve after update");
            assert!(
                sparsekit::ops::residual_inf_norm(m, &out.x, &b) < 1e-6,
                "step {t} must solve its own drifted matrix (workers={w})"
            );

            let t0 = Instant::now();
            let mut fresh = Pdslin::setup(m, cfg).expect("fresh setup");
            let full_setup_seconds = t0.elapsed().as_secs_f64();
            let fresh_out = fresh.solve(&b).expect("fresh solve");

            rows.push(SequenceRow {
                problem: problem.to_string(),
                kernel: "refactorize".to_string(),
                workers: w,
                step: t,
                refactor_seconds,
                full_setup_seconds,
                speedup: full_setup_seconds / refactor_seconds,
                bit_identical: out.x == fresh_out.x,
                refactorized: upd.rebuilt == 0,
                stale_fallbacks: 0,
                iterations: out.iterations,
            });
        }
        std::env::remove_var(pdslin::par::THREADS_ENV);
    }
}

/// Reverse-drift walk that must trip the staleness policy: the setup
/// matrix is a heavy perturbation of the base, aggressive drop
/// tolerances make the frozen `S̃` a poor preconditioner for the clean
/// matrices the walk returns to, and a tight policy turns that
/// degradation into a typed stale fallback.
fn bench_stale_probe(rows: &mut Vec<SequenceRow>) {
    // Fixed calibrated problem: at this size and `k`, the last step of
    // the walk needs ~2x the baseline iterations under the stale
    // preconditioner, reliably past the 1.5x cap. (The forward-drift
    // section above shows replay does NOT degrade on well-behaved
    // drifts — manufacturing staleness takes a deliberately hostile
    // setup matrix.)
    let a = matgen::stencil::laplace2d(16, 16);
    let problem = "laplace2d(16,16)";
    std::env::set_var(pdslin::par::THREADS_ENV, "1");
    let cfg = PdslinConfig {
        k: 2,
        interface_drop_tol: 5e-2,
        schur_drop_tol: 5e-2,
        parallel: false,
        ..Default::default()
    };
    let mats = vec![drift(&a, 500.0), drift(&a, 5.0), a.clone()];
    let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
    let rhs: Vec<Vec<f64>> = vec![b; mats.len()];
    let policy = SequencePolicy {
        max_iteration_growth: 1.5,
        min_baseline_iters: 4,
        ..SequencePolicy::default()
    };
    let mut solver = Pdslin::setup(&mats[0], cfg).expect("stale-probe setup");
    let seq = solver
        .solve_sequence(&mats, &rhs, &policy)
        .expect("stale-probe sequence");
    let stale_total: usize = seq.iter().filter(|s| s.stale_fallback).count();
    assert!(
        stale_total >= 1,
        "the reverse-drift walk must trip the staleness policy at least once"
    );
    for (t, s) in seq.iter().enumerate() {
        rows.push(SequenceRow {
            problem: problem.to_string(),
            kernel: "stale_probe".to_string(),
            workers: 1,
            step: t,
            refactor_seconds: s.update_seconds,
            full_setup_seconds: 0.0,
            speedup: 0.0,
            bit_identical: false,
            refactorized: s.refactorized,
            stale_fallbacks: stale_total,
            iterations: s.outcome.iterations,
        });
    }
    std::env::remove_var(pdslin::par::THREADS_ENV);
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let ((nx, ny), steps) = match scale {
        Scale::Test => ((60, 60), 4),
        Scale::Bench => ((200, 200), 8),
    };
    let a = matgen::stencil::laplace2d(nx, ny);
    let problem = format!("laplace2d({nx},{ny})");

    let mut rows = Vec::new();
    bench_refactorize(&mut rows, &problem, &a, steps, 0.02);
    bench_stale_probe(&mut rows);

    println!(
        "{:<18} {:>7} {:>4} {:>12} {:>12} {:>8}  flags",
        "problem", "workers", "step", "refactor", "full setup", "speedup"
    );
    for r in &rows {
        println!(
            "{:<18} {:>7} {:>4} {:>12} {:>12} {:>8.2}  {}{}{}",
            format!("{}/{}", r.problem, r.kernel),
            r.workers,
            r.step,
            pdslin_bench::fmt_secs(r.refactor_seconds),
            pdslin_bench::fmt_secs(r.full_setup_seconds),
            r.speedup,
            if r.bit_identical { "=" } else { "~" },
            if r.refactorized { "r" } else { "R" },
            if r.stale_fallbacks > 0 { "!" } else { "" },
        );
    }

    let refac: Vec<&SequenceRow> = rows
        .iter()
        .filter(|r| r.kernel == "refactorize" && r.step > 0)
        .collect();
    let mean_speedup = refac.iter().map(|r| r.speedup).sum::<f64>() / refac.len() as f64;
    println!("mean refactorize speedup over full setup: {mean_speedup:.2}x");

    pdslin_bench::write_json("BENCH_sequence", &rows);
}
