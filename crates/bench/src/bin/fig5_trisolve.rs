//! **Fig. 5 (a–d)** — blocked sparse triangular solution time vs block
//! size `B` for the three RHS reordering techniques, min/avg/max over
//! the eight subdomains, on the tdr190k, dds.quad, dds.linear and
//! matrix211 analogues.

use matgen::MatrixKind;
use pdslin::interface::g_solve_experiment;
use pdslin::RhsOrdering;

pdslin_bench::json_record! {
    struct Fig5Row {
        matrix: String,
        ordering: String,
        block_size: usize,
        min_seconds: f64,
        avg_seconds: f64,
        max_seconds: f64,
        /// Speedup of this ordering's avg time over natural at the same B
        /// (filled for non-natural orderings).
        speedup_vs_natural: f64,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let kinds = [
        MatrixKind::Tdr190k,
        MatrixKind::DdsQuad,
        MatrixKind::DdsLinear,
        MatrixKind::Matrix211,
    ];
    let blocks = [10usize, 30, 60, 120, 240];
    let orderings = [
        RhsOrdering::Natural,
        RhsOrdering::Postorder,
        RhsOrdering::Hypergraph { tau: Some(0.4) },
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let (_a, sys, factors) = pdslin_bench::ngd_factored_system(kind, scale, 8);
        println!(
            "\nFig 5 ({}): triangular solve seconds (min/avg/max over 8 subdomains)",
            kind.name()
        );
        println!(
            "{:<6} {:>28} {:>28} {:>28}",
            "B", "natural", "postorder", "hypergraph"
        );
        for &b in &blocks {
            let mut cells = Vec::new();
            let mut natural_avg = 0.0;
            for &ord in &orderings {
                let secs: Vec<f64> = sys
                    .domains
                    .iter()
                    .zip(&factors)
                    .map(|(dom, fd)| g_solve_experiment(fd, dom, b, ord).1)
                    .collect();
                let (lo, av, hi) = pdslin_bench::min_avg_max(&secs);
                if ord == RhsOrdering::Natural {
                    natural_avg = av;
                }
                let speedup = if av > 0.0 { natural_avg / av } else { 0.0 };
                cells.push(format!("{lo:.3}/{av:.3}/{hi:.3}"));
                rows.push(Fig5Row {
                    matrix: kind.name().to_string(),
                    ordering: ord.label().to_string(),
                    block_size: b,
                    min_seconds: lo,
                    avg_seconds: av,
                    max_seconds: hi,
                    speedup_vs_natural: speedup,
                });
            }
            println!(
                "{:<6} {:>28} {:>28} {:>28}",
                b, cells[0], cells[1], cells[2]
            );
        }
    }
    pdslin_bench::write_json("fig5_trisolve", &rows);
}
