//! Service load generator: drives an in-process `pdslin_service::Service`
//! with N concurrent clients through mixed traffic — clean solves across
//! two cached matrices, fault-injected requests (service-level attempt
//! failures and worker panics), memory-pressure degradation, and a
//! deadline storm — and records latency percentiles and throughput per
//! concurrency level in `BENCH_service.json`.
//!
//! Hard assertions (what CI gates on):
//!
//! * every request receives exactly one typed response
//!   (`ok`/`overloaded`/`error`), even under injected panics and
//!   past-deadline storms;
//! * no deadline-carrying request is answered later than its deadline
//!   plus a generous cooperative-polling slack — the daemon never hangs
//!   a request past its deadline;
//! * the daemon is still serving (a metrics snapshot succeeds) after the
//!   soak, and shuts down cleanly with nothing left unanswered.
//!
//! Latency/throughput numbers are recorded for trajectory tracking, not
//! asserted — CI runners make them meaningless to gate on.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use matgen::Scale;
use pdslin_service::{
    parse_request, Request, Response, ResponseBody, Service, ServiceConfig, SolveRequest,
};

pdslin_bench::json_record! {
    struct ServiceRow {
        phase: String,
        concurrency: usize,
        requests: usize,
        ok: usize,
        typed_errors: usize,
        overloaded: usize,
        retries: u64,
        injected_failures: u64,
        batches: u64,
        coalesced: u64,
        cache_hits: u64,
        cache_misses: u64,
        degraded_setups: u64,
        deadline_violations: usize,
        p50_ms: f64,
        p99_ms: f64,
        throughput_rps: f64,
    }
}

/// Cooperative budget polling happens at phase/iteration boundaries, so
/// an in-flight request can overrun its deadline by one polling
/// interval. This slack bounds that interval; blowing through it means
/// a request was effectively hung.
const DEADLINE_SLACK_MS: f64 = 1500.0;

/// Builds a solve request from a jsonl line (single source of truth for
/// request shape: the same parser the daemon uses).
fn request(line: &str) -> Box<SolveRequest> {
    match parse_request(line).expect("benchmark request must parse") {
        Request::Solve { solve, .. } => solve,
        other => panic!("expected solve request, got {other:?}"),
    }
}

struct Sample {
    latency_ms: f64,
    status: &'static str,
    deadline_ms: Option<u64>,
}

/// One client: issues its requests back-to-back (request → response →
/// next), collecting per-request latency and status.
fn run_client(service: &Service, lines: &[String]) -> Vec<Sample> {
    let (tx, rx) = mpsc::channel::<Response>();
    let mut samples = Vec::with_capacity(lines.len());
    for line in lines {
        let solve = request(line);
        let deadline_ms = solve.deadline_ms;
        let t0 = Instant::now();
        service.submit("bench", solve, &tx);
        let resp = rx.recv().expect("every request must be answered");
        let latency_ms = t0.elapsed().as_secs_f64() * 1e3;
        let status = match resp.body {
            ResponseBody::Solve(_) => "ok",
            ResponseBody::Overloaded { .. } => "overloaded",
            ResponseBody::Error { .. } => "error",
            other => panic!("unexpected response body {other:?}"),
        };
        samples.push(Sample {
            latency_ms,
            status,
            deadline_ms,
        });
    }
    samples
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn summarize(
    rows: &mut Vec<ServiceRow>,
    phase: &str,
    concurrency: usize,
    samples: &[Sample],
    wall: Duration,
    service: &Service,
) {
    let ok = samples.iter().filter(|s| s.status == "ok").count();
    let typed_errors = samples.iter().filter(|s| s.status == "error").count();
    let overloaded = samples.iter().filter(|s| s.status == "overloaded").count();
    let deadline_violations = samples
        .iter()
        .filter(|s| {
            s.deadline_ms
                .is_some_and(|d| s.latency_ms > d as f64 + DEADLINE_SLACK_MS)
        })
        .count();
    let mut lat: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    lat.sort_by(f64::total_cmp);
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    let throughput = samples.len() as f64 / wall.as_secs_f64().max(1e-9);
    let m = service.metrics_snapshot();
    println!(
        "{phase:<12} c={concurrency} n={:<4} ok={ok:<4} err={typed_errors:<3} over={overloaded:<3} \
         p50={p50:>8.2}ms p99={p99:>8.2}ms {throughput:>7.1} req/s",
        samples.len()
    );
    assert_eq!(
        deadline_violations, 0,
        "{phase}: {deadline_violations} request(s) hung past deadline + {DEADLINE_SLACK_MS}ms slack"
    );
    rows.push(ServiceRow {
        phase: phase.to_string(),
        concurrency,
        requests: samples.len(),
        ok,
        typed_errors,
        overloaded,
        retries: m.retries,
        injected_failures: m.injected_failures,
        batches: m.batches,
        coalesced: m.coalesced,
        cache_hits: m.cache_hits,
        cache_misses: m.cache_misses,
        degraded_setups: m.degraded_setups,
        deadline_violations,
        p50_ms: p50,
        p99_ms: p99,
        throughput_rps: throughput,
    });
}

/// Clean mixed-key traffic at a given concurrency.
fn phase_throughput(
    rows: &mut Vec<ServiceRow>,
    service: &Service,
    concurrency: usize,
    per_client: usize,
) {
    let wall0 = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|c| {
                let lines: Vec<String> = (0..per_client)
                    .map(|i| {
                        // Two spec keys so the cache holds both hot
                        // entries and hits dominate after warm-up.
                        let kind = if (c + i) % 2 == 0 { "g3_circuit" } else { "matrix211" };
                        format!(
                            r#"{{"id":"t{c}-{i}","op":"solve","generate":"{kind}","k":4,"rhs_seed":{seed},"deadline_ms":30000}}"#,
                            seed = c * 100 + i
                        )
                    })
                    .collect();
                scope.spawn(move || run_client(service, &lines))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = wall0.elapsed();
    assert_eq!(samples.len(), concurrency * per_client);
    summarize(rows, "throughput", concurrency, &samples, wall, service);
}

/// Fault soak: ≥4 concurrent clients mixing clean, retry-injected,
/// panic-injected, memory-degraded, and past-deadline traffic.
fn phase_soak(rows: &mut Vec<ServiceRow>, service: &Service, concurrency: usize, reps: usize) {
    let wall0 = Instant::now();
    let samples: Vec<Sample> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|c| {
                let mut lines = Vec::new();
                for i in 0..reps {
                    // Clean hit traffic keeps the cache warm…
                    lines.push(format!(
                        r#"{{"id":"s{c}-{i}a","op":"solve","generate":"g3_circuit","k":4,"rhs_seed":{},"deadline_ms":30000}}"#,
                        c * 100 + i
                    ));
                    // …injected attempt failures exercise retry+backoff…
                    lines.push(format!(
                        r#"{{"id":"s{c}-{i}b","op":"solve","generate":"g3_circuit","k":4,"rhs_seed":{},"fail_attempts":1,"retry_limit":2,"deadline_ms":30000}}"#,
                        c * 100 + i
                    ));
                    // …a worker panic inside LU(D) exercises the solver's
                    // catch_unwind isolation (distinct spec key: faulted
                    // setups never share the clean cache entry)…
                    lines.push(format!(
                        r#"{{"id":"s{c}-{i}c","op":"solve","generate":"matrix211","k":4,"worker_panic":0,"rhs_seed":{},"deadline_ms":30000}}"#,
                        i
                    ));
                    // …memory pressure forces the degraded-preconditioner
                    // path (the service's setup memory budget applies)…
                    lines.push(format!(
                        r#"{{"id":"s{c}-{i}d","op":"solve","generate":"matrix211","k":4,"memory_blowup":true,"rhs_seed":{i},"deadline_ms":30000}}"#
                    ));
                    // …and a deadline storm: 1 ms budgets must come back
                    // as fast typed errors, never hang.
                    lines.push(format!(
                        r#"{{"id":"s{c}-{i}e","op":"solve","generate":"g3_circuit","k":4,"rhs_seed":{i},"deadline_ms":1}}"#
                    ));
                }
                scope.spawn(move || run_client(service, &lines))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = wall0.elapsed();
    assert_eq!(samples.len(), concurrency * reps * 5);
    summarize(rows, "fault_soak", concurrency, &samples, wall, service);
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let (levels, per_client, soak_reps): (&[usize], usize, usize) = match scale {
        Scale::Test => (&[1, 2, 4], 6, 2),
        Scale::Bench => (&[1, 2, 4, 8], 24, 6),
    };
    let service = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: 128,
        max_batch: 8,
        cache_budget_bytes: 512 << 20,
        // Low enough that `memory_blowup` requests take the degraded
        // path instead of failing outright.
        setup_mem_budget_bytes: Some(64 << 20),
        default_deadline_ms: Some(60_000),
        ..Default::default()
    });

    println!("Service benchmark: latency/throughput vs concurrency, then fault soak\n");
    let mut rows = Vec::new();
    for &c in levels {
        phase_throughput(&mut rows, &service, c, per_client);
    }
    phase_soak(&mut rows, &service, 4, soak_reps);

    // The daemon must still be alive and observable after the soak.
    let m = service.metrics_snapshot();
    assert!(m.received > 0);
    assert!(m.completed_ok > 0, "soak must complete some requests");
    assert!(m.retries > 0, "injected failures must consume retries");
    assert!(
        m.injected_failures > 0,
        "fault soak must exercise injected failures"
    );
    assert!(
        m.cache_hits > 0,
        "repeat traffic must hit the factorization cache"
    );
    println!(
        "\nmetrics: received={} ok={} failed={} retries={} cache {}h/{}m/{}e \
         batches={} coalesced={} degraded={}",
        m.received,
        m.completed_ok,
        m.failed,
        m.retries,
        m.cache_hits,
        m.cache_misses,
        m.cache_evictions,
        m.batches,
        m.coalesced,
        m.degraded_setups
    );

    let report = service.shutdown(Duration::from_secs(30));
    assert_eq!(
        report.cancelled, 0,
        "a clean shutdown after quiescence cancels nothing"
    );
    pdslin_bench::write_json("BENCH_service", &rows);
    println!("\nall requests answered with typed responses; none hung past deadline");
}
