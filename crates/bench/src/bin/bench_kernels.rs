//! Serial-vs-parallel kernel benchmark: blocked interface solves,
//! two-phase SpGEMM, and end-to-end preconditioner setup across worker
//! counts, with machine-readable speedups in `BENCH_kernels.json`.
//!
//! Every parallel result is checked for **exact** equality against the
//! serial run (the kernels promise byte-identical output); a mismatch
//! aborts the process, which is what the CI smoke step relies on.
//! Speedups are recorded for trajectory tracking but never asserted —
//! CI runners (and single-core hosts) make them meaningless to gate on.

use matgen::{MatrixKind, Scale};
use pdslin::interface::{compute_interface_workers, ehat_columns_pivot, InterfaceConfig};
use pdslin::rhs_order::{column_reaches, order_columns_precomputed};
use pdslin::{Budget, Pdslin, PdslinConfig, RhsOrdering};
use slu::trisolve::{SolveWorkspace, SparseVec};
use slu::SupernodePlan;
use sparsekit::spgemm::spgemm_checked_workers;
use sparsekit::Csr;
use std::time::Instant;

pdslin_bench::json_record! {
    struct KernelRow {
        problem: String,
        kernel: String,
        workers: usize,
        seconds: f64,
        serial_seconds: f64,
        speedup: f64,
        matches_serial: bool,
        nnz: usize,
        padded_zeros: u64,
    }
}

const WORKERS: [usize; 3] = [1, 2, 4];

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<KernelRow>,
    problem: &str,
    kernel: &str,
    workers: usize,
    seconds: f64,
    serial_seconds: f64,
    matches_serial: bool,
    nnz: usize,
    padded_zeros: u64,
) {
    let speedup = if seconds > 0.0 {
        serial_seconds / seconds
    } else {
        0.0
    };
    println!(
        "{problem:<16} {kernel:<12} w={workers}  {:>10.4}s  speedup {speedup:>5.2}x  match={matches_serial}",
        seconds
    );
    assert!(
        matches_serial,
        "{problem}/{kernel} with {workers} workers diverged from the serial result"
    );
    rows.push(KernelRow {
        problem: problem.to_string(),
        kernel: kernel.to_string(),
        workers,
        seconds,
        serial_seconds,
        speedup,
        matches_serial,
        nnz,
        padded_zeros,
    });
}

/// `A·A` with the two-phase SpGEMM, exact-equality checked.
fn bench_spgemm(rows: &mut Vec<KernelRow>, problem: &str, a: &Csr) {
    let budget = Budget::unlimited();
    let mut serial: Option<(Csr, f64)> = None;
    for &w in &WORKERS {
        let t0 = Instant::now();
        let c = spgemm_checked_workers(a, a, &budget, w).expect("unlimited budget");
        let secs = t0.elapsed().as_secs_f64();
        let (matches, serial_secs, nnz) = match &serial {
            None => {
                let nnz = c.nnz();
                serial = Some((c, secs));
                (true, secs, nnz)
            }
            Some((ref_c, ref_secs)) => (c == *ref_c, *ref_secs, c.nnz()),
        };
        push_row(
            rows,
            problem,
            "spgemm",
            w,
            secs,
            serial_secs,
            matches,
            nnz,
            0,
        );
    }
}

/// Per-subdomain interface phase (`G`/`W` solves + `T̃` product) with
/// intra-subdomain workers, exact-equality checked on every `T̃`.
fn bench_interface(rows: &mut Vec<KernelRow>, problem: &str, a: &Csr) {
    let part = pdslin::compute_partition(a, 4, &pdslin::PartitionerKind::Ngd);
    let sys = pdslin::extract_dbbd(a, part);
    let factors: Vec<_> = sys
        .domains
        .iter()
        .map(|d| pdslin::subdomain::factor_domain(&d.d, 0.1).expect("subdomain LU"))
        .collect();
    let cfg = InterfaceConfig {
        block_size: 60,
        ordering: RhsOrdering::Postorder,
        drop_tol: 1e-8,
    };
    let budget = Budget::unlimited();
    let mut serial: Option<(Vec<Csr>, f64, u64)> = None;
    for &w in &WORKERS {
        let t0 = Instant::now();
        let mut ts = Vec::with_capacity(sys.domains.len());
        let mut padded = 0u64;
        for (dom, fd) in sys.domains.iter().zip(&factors) {
            let out =
                compute_interface_workers(fd, dom, &cfg, &budget, w).expect("unlimited budget");
            padded += out.g_block.padded_zeros;
            ts.push(out.t_tilde);
        }
        let secs = t0.elapsed().as_secs_f64();
        let nnz = ts.iter().map(|t| t.nnz()).sum();
        let (matches, serial_secs) = match &serial {
            None => {
                serial = Some((ts, secs, padded));
                (true, secs)
            }
            Some((ref_ts, ref_secs, ref_padded)) => {
                (ts == *ref_ts && padded == *ref_padded, *ref_secs)
            }
        };
        push_row(
            rows,
            problem,
            "interface",
            w,
            secs,
            serial_secs,
            matches,
            nnz,
            padded,
        );
    }
}

/// End-to-end `Pdslin::setup` with `PDSLIN_THREADS` bounding the total
/// (outer × inner) concurrency; checked on the assembled Schur nnz.
fn bench_setup(rows: &mut Vec<KernelRow>, problem: &str, a: &Csr) {
    let mut serial: Option<(usize, f64)> = None;
    for &w in &WORKERS {
        std::env::set_var(pdslin::par::THREADS_ENV, w.to_string());
        let cfg = PdslinConfig {
            k: 4,
            parallel: w > 1,
            ..Default::default()
        };
        let t0 = Instant::now();
        let solver = Pdslin::setup(a, cfg).expect("setup");
        let secs = t0.elapsed().as_secs_f64();
        let nnz_schur = solver.stats.nnz_schur;
        let (matches, serial_secs) = match &serial {
            None => {
                serial = Some((nnz_schur, secs));
                (true, secs)
            }
            Some((ref_nnz, ref_secs)) => (nnz_schur == *ref_nnz, *ref_secs),
        };
        push_row(
            rows,
            problem,
            "setup",
            w,
            secs,
            serial_secs,
            matches,
            nnz_schur,
            0,
        );
    }
    std::env::remove_var(pdslin::par::THREADS_ENV);
}

/// Supernodal panel trisolve: the packed dense-microkernel tier (plan
/// blocks + precomputed reaches) vs the scalar column-at-a-time
/// reference path, on the quasidense (graded tdr) generator.
///
/// The microkernel tier consumes the per-column reaches the RHS-ordering
/// pass has already computed (`column_reaches`), exactly as the solver
/// pipeline does, so the comparison measures what the kernel tier
/// removes: the redundant per-column symbolic re-reach, the second union
/// reach, and the per-entry scatter updates.
///
/// Unlike every other row in this file, the `speedup` column here *is*
/// gated in CI (`summarize_results.py` requires ≥ 1.5×): it is a
/// same-thread algorithmic ratio over identical inputs — not a parallel
/// speedup — so it is stable across runners. Bit-identity of the two
/// paths is asserted on every panel entry.
fn bench_supernodal(rows: &mut Vec<KernelRow>, scale: Scale) {
    let kind = MatrixKind::Tdr190k;
    let (_a, sys, factors) = pdslin_bench::ngd_factored_system(kind, scale, 8);
    let reps = match scale {
        Scale::Test => 20,
        Scale::Bench => 20,
    };
    let block = 60usize;
    let dom = &sys.domains[1];
    let fd = &factors[1];
    let n = fd.lu.n();
    let plan = SupernodePlan::build(&fd.lu.l, 0);
    let sn = plan.supernodes();
    let mut ws = SolveWorkspace::new(n);
    let cols = ehat_columns_pivot(fd, dom);
    let reaches = column_reaches(&cols, &fd.lu.l, &mut ws);
    let order = order_columns_precomputed(&cols, &reaches, n, block, RhsOrdering::Postorder);
    let ordered: Vec<SparseVec> = order.iter().map(|&j| cols[j].clone()).collect();
    let ordered_reaches: Vec<Vec<usize>> = order.iter().map(|&j| reaches[j].clone()).collect();
    let chunks: Vec<(&[SparseVec], &[Vec<usize>])> = ordered
        .chunks(block)
        .zip(ordered_reaches.chunks(block))
        .collect();

    let run = |micro: bool, ws: &mut SolveWorkspace| {
        let mut panels: Vec<Vec<f64>> = Vec::with_capacity(chunks.len());
        let mut padded = 0u64;
        let t0 = Instant::now();
        for _ in 0..reps {
            panels.clear();
            padded = 0;
            for (chunk, chunk_reaches) in &chunks {
                let (_p, panel, st) = if micro {
                    slu::supernodal_blocked_solve_precomputed(&fd.lu.l, &plan, chunk, chunk_reaches)
                } else {
                    slu::supernodal_blocked_solve_reference(&fd.lu.l, sn, chunk, ws)
                };
                padded += st.padded_zeros;
                panels.push(panel);
            }
        }
        (panels, padded, t0.elapsed().as_secs_f64() / reps as f64)
    };
    let (ref_panels, ref_padded, ref_secs) = run(false, &mut ws);
    let (micro_panels, micro_padded, micro_secs) = run(true, &mut ws);
    let matches = ref_padded == micro_padded
        && ref_panels.len() == micro_panels.len()
        && ref_panels.iter().zip(&micro_panels).all(|(a, b)| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });
    // `workers` is 1 for both rows: this comparison is scalar-reference
    // vs microkernel on one thread, so `serial_seconds`/`speedup` read
    // as reference-vs-microkernel rather than serial-vs-parallel.
    push_row(
        rows,
        kind.name(),
        "supernodal_ref",
        1,
        ref_secs,
        ref_secs,
        true,
        fd.lu.l.nnz(),
        ref_padded,
    );
    push_row(
        rows,
        kind.name(),
        "supernodal",
        1,
        micro_secs,
        ref_secs,
        matches,
        fd.lu.l.nnz(),
        micro_padded,
    );
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let (nx, ny) = match scale {
        Scale::Test => (50, 50),
        Scale::Bench => (200, 200),
    };
    let laplace = matgen::stencil::laplace2d(nx, ny);
    let laplace_name = format!("laplace2d({nx},{ny})");
    let circuits = [MatrixKind::G3Circuit, MatrixKind::Asic680ks];

    let mut rows = Vec::new();
    println!("Kernel benchmark: serial vs parallel (workers 1/2/4)\n");
    bench_spgemm(&mut rows, &laplace_name, &laplace);
    bench_interface(&mut rows, &laplace_name, &laplace);
    bench_setup(&mut rows, &laplace_name, &laplace);
    bench_supernodal(&mut rows, scale);
    for kind in circuits {
        let a = matgen::generate(kind, scale);
        bench_spgemm(&mut rows, kind.name(), &a);
        bench_interface(&mut rows, kind.name(), &a);
    }
    pdslin_bench::write_json("BENCH_kernels", &rows);
    println!("\nall parallel results matched serial exactly");
}
