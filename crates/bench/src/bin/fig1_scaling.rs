//! **Fig. 1** — PDSLin runtime (phases `LU(D)`, `Comp(S)`, `LU(S)`,
//! `Solve`) as a function of the core count, for `tdr455k` with k = 8,
//! comparing RHB (soed, single constraint) against the NGD baseline.
//!
//! Per-subdomain phase costs are *measured* sequentially; the core sweep
//! is produced twice (DESIGN.md §3, substitution 2):
//!
//! * by the **event-driven simulator** (`parsim`): gang tasks per
//!   subdomain, α–β gather messages, full-machine `LU(S)`/solve;
//! * by the closed-form analytic model (`pdslin::scaling`) as a
//!   cross-check.

use parsim::pdslin_model::{sweep as sim_sweep, MeasuredCosts, SimulatedTimes};
use parsim::Machine;
use pdslin::scaling::{PredictedTimes, ScalingModel};
use pdslin::{PartitionerKind, Pdslin, PdslinConfig};

pdslin_bench::json_record! {
    struct Fig1Row {
        partitioner: String,
        model: String,
        cores: usize,
        lu_d: f64,
        comp_s: f64,
        lu_s: f64,
        solve: f64,
        total: f64,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let a = matgen::generate(matgen::MatrixKind::Tdr455k, scale);
    eprintln!("tdr455k analogue: n={} nnz={}", a.nrows(), a.nnz());
    let cores = [8usize, 32, 128, 512, 1024];
    let analytic = ScalingModel::default();
    let machine = Machine::default();
    let mut rows: Vec<Fig1Row> = Vec::new();
    println!("Fig 1: PDSLin phase times for tdr455k analogue, k=8 (simulated core sweep)");
    println!(
        "{:<12} {:<9} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "partitioner", "model", "cores", "LU(D)", "Comp(S)", "LU(S)", "Solve", "total"
    );
    for kind in [
        PartitionerKind::Rhb(hypergraph::RhbConfig::default()),
        PartitionerKind::Ngd,
    ] {
        let label = kind.label();
        let cfg = PdslinConfig {
            k: 8,
            partitioner: kind,
            parallel: false, // measure clean sequential per-domain costs
            schur_drop_tol: 1e-4,
            interface_drop_tol: 1e-6,
            ..Default::default()
        };
        let mut solver = Pdslin::setup(&a, cfg).expect("setup");
        let b = vec![1.0; a.nrows()];
        let out = solver.solve(&b).expect("solve");
        eprintln!(
            "{label}: nsep={} iterations={} sequential total={:.1}s",
            solver.stats.separator_size,
            out.iterations,
            solver.stats.times.total()
        );
        // Event-driven simulation.
        let costs = MeasuredCosts {
            lu_d: solver.stats.domain_costs.lu_d.clone(),
            comp_s: solver.stats.domain_costs.comp_s.clone(),
            gather_bytes: solver
                .stats
                .nnz_t
                .iter()
                .map(|&n| 12.0 * n as f64)
                .collect(),
            lu_s: solver.stats.times.lu_s,
            solve: solver.stats.times.solve,
        };
        let sim: Vec<SimulatedTimes> = sim_sweep(&costs, &machine, 8, &cores);
        for p in &sim {
            println!(
                "{:<12} {:<9} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                label, "event", p.cores, p.lu_d, p.comp_s, p.lu_s, p.solve, p.makespan
            );
            rows.push(Fig1Row {
                partitioner: label.clone(),
                model: "event".into(),
                cores: p.cores,
                lu_d: p.lu_d,
                comp_s: p.comp_s,
                lu_s: p.lu_s,
                solve: p.solve,
                total: p.makespan,
            });
        }
        // Analytic cross-check.
        let sweep: Vec<PredictedTimes> =
            analytic.sweep(&solver.stats.domain_costs, &solver.stats.times, 8, &cores);
        for p in &sweep {
            println!(
                "{:<12} {:<9} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                label,
                "analytic",
                p.cores,
                p.lu_d,
                p.comp_s,
                p.lu_s,
                p.solve,
                p.total()
            );
            rows.push(Fig1Row {
                partitioner: label.clone(),
                model: "analytic".into(),
                cores: p.cores,
                lu_d: p.lu_d,
                comp_s: p.comp_s,
                lu_s: p.lu_s,
                solve: p.solve,
                total: p.total(),
            });
        }
    }
    pdslin_bench::write_json("fig1_scaling", &rows);
}
