//! **Partitioning + ordering summary** — one machine-checkable record
//! per (matrix, block size): total padded zeros of the four RHS
//! orderings (natural, postorder, hypergraph, RGB) over the NGD
//! subdomains, separator sizes of unit- vs value-weighted NGD and RHB,
//! and the configuration the automatic strategy selector picks.
//!
//! The CI bench-smoke job runs this at test scale and
//! `scripts/summarize_results.py` hard-validates the output shape,
//! including the invariant that RGB never pads more than the natural
//! order (guaranteed by construction in `order_columns_precomputed`).

use matgen::MatrixKind;
use pdslin::interface::ehat_columns_pivot;
use pdslin::rhs_order::{column_reaches, order_columns_precomputed, padding_of_order};
use pdslin::{
    compute_partition_weighted, select_strategy, PartitionerKind, RhsOrdering, WeightScheme,
};
use slu::trisolve::SolveWorkspace;

pdslin_bench::json_record! {
    struct PartitionRow {
        matrix: String,
        block_size: usize,
        natural: u64,
        postorder: u64,
        hypergraph: u64,
        rgb: u64,
        true_nnz: u64,
        rgb_le_natural: bool,
        ngd_sep: usize,
        ngd_vw_sep: usize,
        rhb_sep: usize,
        rhb_vw_sep: usize,
        strategy: String,
    }
}

fn separator(a: &sparsekit::Csr, kind: &PartitionerKind, w: WeightScheme) -> usize {
    compute_partition_weighted(a, 8, kind, w).separator_size()
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let kinds = [
        MatrixKind::Tdr190k,
        MatrixKind::DdsLinear,
        MatrixKind::Matrix211,
        MatrixKind::G3Circuit,
    ];
    let blocks = [30usize, 60, 120];
    let orderings = [
        RhsOrdering::Natural,
        RhsOrdering::Postorder,
        RhsOrdering::Hypergraph { tau: Some(0.4) },
        RhsOrdering::Rgb(Default::default()),
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let (a, sys, factors) = pdslin_bench::ngd_factored_system(kind, scale, 8);
        let ngd_sep = separator(&a, &PartitionerKind::Ngd, WeightScheme::Unit);
        let ngd_vw_sep = separator(&a, &PartitionerKind::Ngd, WeightScheme::ValueScaled);
        let rhb = PartitionerKind::Rhb(Default::default());
        let rhb_sep = separator(&a, &rhb, WeightScheme::Unit);
        let rhb_vw_sep = separator(&a, &rhb, WeightScheme::ValueScaled);
        let s = select_strategy(&a);
        let strategy = format!(
            "{}+{}+{}+B{}",
            s.partitioner.label(),
            s.weights.label(),
            s.ordering.label(),
            s.block_size
        );
        let domain_data: Vec<_> = sys
            .domains
            .iter()
            .zip(&factors)
            .map(|(dom, fd)| {
                let n = fd.lu.n();
                let mut ws = SolveWorkspace::new(n);
                let cols = ehat_columns_pivot(fd, dom);
                let reaches = column_reaches(&cols, &fd.lu.l, &mut ws);
                (cols, reaches, n)
            })
            .collect();
        println!(
            "\n{}: separators NGD {} / {} (vw), RHB {} / {} (vw); auto strategy {}",
            kind.name(),
            ngd_sep,
            ngd_vw_sep,
            rhb_sep,
            rhb_vw_sep,
            strategy
        );
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "B", "natural", "postorder", "hypergraph", "rgb", "true_nnz"
        );
        for &b in &blocks {
            let mut padded = [0u64; 4];
            let mut true_nnz = 0u64;
            for (i, &ord) in orderings.iter().enumerate() {
                let mut tn = 0u64;
                for (cols, reaches, n) in &domain_data {
                    let order = order_columns_precomputed(cols, reaches, *n, b, ord);
                    let (p, t) = padding_of_order(reaches, *n, &order, b);
                    padded[i] += p;
                    tn += t;
                }
                true_nnz = tn;
            }
            let rgb_le_natural = padded[3] <= padded[0];
            assert!(
                rgb_le_natural,
                "{} B={b}: rgb padded {} > natural {}",
                kind.name(),
                padded[3],
                padded[0]
            );
            println!(
                "{:<6} {:>12} {:>12} {:>12} {:>12} {:>12}",
                b, padded[0], padded[1], padded[2], padded[3], true_nnz
            );
            rows.push(PartitionRow {
                matrix: kind.name().to_string(),
                block_size: b,
                natural: padded[0],
                postorder: padded[1],
                hypergraph: padded[2],
                rgb: padded[3],
                true_nnz,
                rgb_le_natural,
                ngd_sep,
                ngd_vw_sep,
                rhb_sep,
                rhb_vw_sep,
                strategy: strategy.clone(),
            });
        }
    }
    pdslin_bench::write_json("BENCH_partition", &rows);
}
