//! Measured multi-process `LU(D)` speedups vs the parsim prediction.
//!
//! The paper's parallel-performance analysis (§V / Fig. 1) rests on a
//! simulated schedule built from measured sequential costs. This harness
//! closes the loop for the one phase the repo can genuinely parallelize
//! across *processes*: it shards `LU(D)` over 1/2/4 supervised worker
//! processes (`crates/shard`), measures the real wall-clock of the
//! sharded phase, and writes it side by side with parsim's predicted
//! `LU(D)` window at the same core count — so the simulator's
//! assumptions can be checked against a real multi-process execution on
//! the same machine.
//!
//! One extra row per matrix re-runs the widest configuration with an
//! injected worker kill (`FaultPlan::worker_kill`), recording the
//! recovery counters: the measured cost of crash tolerance.
//!
//! Output: `results/BENCH_shard.json` (schema validated by
//! `scripts/summarize_results.py`).

use std::time::Instant;

use matgen::MatrixKind;
use parsim::pdslin_model::{simulate_config, MeasuredCosts};
use parsim::Machine;
use pdslin::{Budget, FaultPlan, Pdslin, PdslinConfig};
use pdslin_bench::{fmt_secs, json_record, scale_from_env, write_json};
use pdslin_shard::{shard_setup, ShardConfig};

json_record! {
    struct Row {
        matrix: String,
        n: usize,
        nnz: usize,
        k: usize,
        workers: usize,
        injected_kill: bool,
        inproc_lu_d_s: f64,
        shard_lu_d_s: f64,
        measured_speedup: f64,
        parsim_lu_d_s: f64,
        parsim_speedup: f64,
        workers_lost: usize,
        respawns: usize,
        reassigned_domains: usize,
        factorizations_remote: usize,
        factorizations_local: usize,
        factorizations_reused: usize,
        degraded: bool,
        bit_identical: bool,
    }
}

fn main() {
    let scale = scale_from_env();
    let kinds = [MatrixKind::G3Circuit, MatrixKind::Asic680ks];
    let k = 8;
    let worker_counts = [1usize, 2, 4];
    let budget = Budget::unlimited();
    let mut rows: Vec<Row> = Vec::new();

    println!(
        "{:<12} {:>3} {:>7} {:>5} {:>12} {:>12} {:>9} {:>11} {:>9}",
        "matrix",
        "w",
        "kill",
        "k",
        "inproc LU(D)",
        "shard LU(D)",
        "measured",
        "parsim LU(D)",
        "predicted"
    );
    for kind in kinds {
        let a = matgen::generate(kind, scale);
        let cfg = PdslinConfig {
            k,
            ..Default::default()
        };

        // In-process baseline: sequential LU(D) wall + per-domain costs
        // (the measured inputs of the parsim model) + the reference
        // solution for the bit-identity check.
        let mut baseline = Pdslin::setup_budgeted(&a, cfg, &budget)
            .unwrap_or_else(|f| panic!("in-process setup failed: {}", f.error));
        let inproc_lu_d = baseline.stats.times.lu_d;
        let costs = MeasuredCosts {
            lu_d: baseline.stats.domain_costs.lu_d.clone(),
            comp_s: baseline.stats.domain_costs.comp_s.clone(),
            gather_bytes: baseline
                .stats
                .nnz_t
                .iter()
                .map(|&nnz| 12.0 * nnz as f64)
                .collect(),
            lu_s: baseline.stats.times.lu_s,
            solve: 0.0,
        };
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| 1.0 + ((i * 7) % 23) as f64 / 23.0)
            .collect();
        let x_ref = baseline.solve(&b).expect("baseline solve").x;
        // parsim's LU(D) window with one core per worker process.
        let predict = |workers: usize| {
            simulate_config(
                &costs,
                &Machine {
                    cores: workers,
                    ..Machine::default()
                },
                k,
            )
            .0
            .lu_d
        };
        let parsim_serial = predict(1);

        for &workers in &worker_counts {
            for injected_kill in [false, true] {
                // One injected-kill row per matrix, at the widest sweep
                // point, so the recovery cost is visible next to the
                // clean measurement it perturbs.
                if injected_kill && workers != *worker_counts.last().unwrap() {
                    continue;
                }
                let mut fcfg = cfg;
                if injected_kill {
                    fcfg.fault = FaultPlan {
                        worker_kill: Some(k - 1),
                        ..Default::default()
                    };
                }
                let shard = ShardConfig {
                    workers,
                    ..Default::default()
                };
                let t0 = Instant::now();
                let (mut solver, report) = shard_setup(&a, fcfg, &shard, &budget)
                    .unwrap_or_else(|f| panic!("shard setup failed: {}", f.error));
                let _total = t0.elapsed();
                let x = solver.solve(&b).expect("shard solve").x;
                let bit_identical = x.len() == x_ref.len()
                    && x.iter()
                        .zip(&x_ref)
                        .all(|(u, v)| u.to_bits() == v.to_bits());
                let shard_lu_d = report.lu_d_wall_seconds;
                let parsim_lu_d = predict(workers);
                let row = Row {
                    matrix: kind.name().to_string(),
                    n: a.nrows(),
                    nnz: a.nnz(),
                    k,
                    workers,
                    injected_kill,
                    inproc_lu_d_s: inproc_lu_d,
                    shard_lu_d_s: shard_lu_d,
                    measured_speedup: if shard_lu_d > 0.0 {
                        inproc_lu_d / shard_lu_d
                    } else {
                        f64::NAN
                    },
                    parsim_lu_d_s: parsim_lu_d,
                    parsim_speedup: if parsim_lu_d > 0.0 {
                        parsim_serial / parsim_lu_d
                    } else {
                        f64::NAN
                    },
                    workers_lost: report.workers_lost,
                    respawns: report.respawns,
                    reassigned_domains: report.reassigned_domains,
                    factorizations_remote: report.factorizations_remote,
                    factorizations_local: report.factorizations_local,
                    factorizations_reused: solver.stats.factorizations_reused,
                    degraded: report.degraded_to_in_process,
                    bit_identical,
                };
                println!(
                    "{:<12} {:>3} {:>7} {:>5} {:>12} {:>12} {:>8.2}x {:>11} {:>8.2}x{}{}",
                    row.matrix,
                    row.workers,
                    if row.injected_kill { "kill" } else { "-" },
                    row.k,
                    fmt_secs(row.inproc_lu_d_s),
                    fmt_secs(row.shard_lu_d_s),
                    row.measured_speedup,
                    fmt_secs(row.parsim_lu_d_s),
                    row.parsim_speedup,
                    if row.degraded { "  [degraded]" } else { "" },
                    if row.bit_identical {
                        ""
                    } else {
                        "  [MISMATCH]"
                    },
                );
                assert!(
                    row.bit_identical,
                    "sharded solve diverged from in-process on {}",
                    row.matrix
                );
                rows.push(row);
            }
        }
    }
    write_json("BENCH_shard", &rows);
}
