//! Ablations of the RHB design choices called out in DESIGN.md §6:
//!
//! * dynamic vs static (unit) vertex weights;
//! * unit vs dynamic weights at the *first* bisection level;
//! * structural factor `M = A` vs `M = tril(A)`;
//! * the three cut metrics (net splitting vs discarding is implied:
//!   con1/soed split, cnet discards).

use hypergraph::rhb::StructuralFactor;
use hypergraph::{ConstraintMode, CutMetric, RhbConfig};
use pdslin::{compute_partition, PartitionStats, PartitionerKind};

pdslin_bench::json_record! {
    struct AblationRow {
        variant: String,
        separator: usize,
        dim_balance: f64,
        nnz_d_balance: f64,
        nnz_e_balance: f64,
        seconds: f64,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, scale);
    eprintln!("tdr190k analogue: n={} nnz={}", a.nrows(), a.nnz());
    let k = 8;
    let base = RhbConfig::default();
    let variants: Vec<(String, RhbConfig)> = vec![
        ("soed-single (default)".into(), base),
        (
            "static unit weights".into(),
            RhbConfig {
                constraint: ConstraintMode::Unit,
                ..base
            },
        ),
        (
            "unit first level (paper-literal)".into(),
            RhbConfig {
                unit_first_level: true,
                ..base
            },
        ),
        (
            "M = A (wide separators)".into(),
            RhbConfig {
                factor: StructuralFactor::Identity,
                ..base
            },
        ),
        (
            "M = edge cover".into(),
            RhbConfig {
                factor: StructuralFactor::EdgeCover,
                ..base
            },
        ),
        (
            "metric con1".into(),
            RhbConfig {
                metric: CutMetric::Con1,
                ..base
            },
        ),
        (
            "metric cnet".into(),
            RhbConfig {
                metric: CutMetric::Cnet,
                ..base
            },
        ),
        (
            "multi-constraint".into(),
            RhbConfig {
                constraint: ConstraintMode::Multi,
                ..base
            },
        ),
    ];
    let mut rows = Vec::new();
    println!("RHB ablations on tdr190k analogue, k={k}");
    println!(
        "{:<34} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "variant", "sep", "dim(D)", "nnz(D)", "nnz(E)", "time(s)"
    );
    for (name, cfg) in variants {
        let t = std::time::Instant::now();
        let p = compute_partition(&a, k, &PartitionerKind::Rhb(cfg));
        let secs = t.elapsed().as_secs_f64();
        let st = PartitionStats::compute(&a, &p);
        println!(
            "{:<34} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name,
            st.separator_size,
            st.dim_balance(),
            st.nnz_d_balance(),
            st.nnz_e_balance(),
            secs
        );
        rows.push(AblationRow {
            variant: name,
            separator: st.separator_size,
            dim_balance: st.dim_balance(),
            nnz_d_balance: st.nnz_d_balance(),
            nnz_e_balance: st.nnz_e_balance(),
            seconds: secs,
        });
    }
    // NGD reference.
    let t = std::time::Instant::now();
    let p = compute_partition(&a, k, &PartitionerKind::Ngd);
    let secs = t.elapsed().as_secs_f64();
    let st = PartitionStats::compute(&a, &p);
    println!(
        "{:<34} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "NGD baseline",
        st.separator_size,
        st.dim_balance(),
        st.nnz_d_balance(),
        st.nnz_e_balance(),
        secs
    );
    rows.push(AblationRow {
        variant: "NGD baseline".into(),
        separator: st.separator_size,
        dim_balance: st.dim_balance(),
        nnz_d_balance: st.nnz_d_balance(),
        nnz_e_balance: st.nnz_e_balance(),
        seconds: secs,
    });
    pdslin_bench::write_json("ablations", &rows);
}
