//! **Table II** — partitioning statistics of the eight interior
//! subdomains with NGD vs RHB (single constraint, soed): solution time
//! (preconditioner + iterations), iteration count, separator size, and
//! min/max of dim(D), nnz(D), nnzcol(E), nnz(E), for the dds.quad,
//! dds.linear, matrix211, ASIC_680ks and G3_circuit analogues.

use matgen::MatrixKind;
use pdslin::{PartitionStats, PartitionerKind, Pdslin, PdslinConfig};

pdslin_bench::json_record! {
    struct Table2Row {
        matrix: String,
        algorithm: String,
        precond_seconds: f64,
        iter_seconds: f64,
        iterations: usize,
        separator: usize,
        dim_min: usize,
        dim_max: usize,
        nnz_d_min: usize,
        nnz_d_max: usize,
        nnzcol_e_min: usize,
        nnzcol_e_max: usize,
        nnz_e_min: usize,
        nnz_e_max: usize,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let kinds = [
        MatrixKind::DdsQuad,
        MatrixKind::DdsLinear,
        MatrixKind::Matrix211,
        MatrixKind::Asic680ks,
        MatrixKind::G3Circuit,
    ];
    let mut rows = Vec::new();
    println!("Table II: NGD vs RHB(soed, single constraint), k=8");
    println!(
        "{:<12} {:<5} {:>13} {:>6} {:>7} {:>13} {:>17} {:>13} {:>15}",
        "matrix",
        "alg",
        "time(P+it)",
        "#iter",
        "n_S",
        "dim min/max",
        "nnzD min/max",
        "colE min/max",
        "nnzE min/max"
    );
    for kind in kinds {
        let a = matgen::generate(kind, scale);
        for pk in [
            PartitionerKind::Ngd,
            PartitionerKind::Rhb(hypergraph::RhbConfig::default()),
        ] {
            let alg = if matches!(pk, PartitionerKind::Ngd) {
                "NGD"
            } else {
                "RHB"
            };
            let cfg = PdslinConfig {
                k: 8,
                partitioner: pk,
                parallel: false,
                schur_drop_tol: 1e-4,
                interface_drop_tol: 1e-6,
                ..Default::default()
            };
            let mut solver = match Pdslin::setup(&a, cfg) {
                Ok(s) => s,
                Err(e) => {
                    println!("{:<12} {:<5} setup failed: {e}", kind.name(), alg);
                    continue;
                }
            };
            let b = vec![1.0; a.nrows()];
            let out = solver.solve(&b).expect("solve");
            let st = PartitionStats::compute(&a, &solver.sys.part);
            // One-level parallel configuration (§V): one process per
            // subdomain; the preconditioner time is the makespan.
            let precond = solver.stats.one_level_parallel_setup();
            let row = Table2Row {
                matrix: kind.name().to_string(),
                algorithm: alg.to_string(),
                precond_seconds: precond,
                iter_seconds: out.seconds,
                iterations: out.iterations,
                separator: st.separator_size,
                dim_min: *st.dims.iter().min().unwrap(),
                dim_max: *st.dims.iter().max().unwrap(),
                nnz_d_min: *st.nnz_d.iter().min().unwrap(),
                nnz_d_max: *st.nnz_d.iter().max().unwrap(),
                nnzcol_e_min: *st.nnzcol_e.iter().min().unwrap(),
                nnzcol_e_max: *st.nnzcol_e.iter().max().unwrap(),
                nnz_e_min: *st.nnz_e.iter().min().unwrap(),
                nnz_e_max: *st.nnz_e.iter().max().unwrap(),
            };
            println!(
                "{:<12} {:<5} {:>6}+{:<6} {:>6} {:>7} {:>6}/{:<6} {:>8}/{:<8} {:>6}/{:<6} {:>7}/{:<7}",
                row.matrix,
                row.algorithm,
                pdslin_bench::fmt_secs(row.precond_seconds),
                pdslin_bench::fmt_secs(row.iter_seconds),
                row.iterations,
                row.separator,
                row.dim_min,
                row.dim_max,
                row.nnz_d_min,
                row.nnz_d_max,
                row.nnzcol_e_min,
                row.nnzcol_e_max,
                row.nnz_e_min,
                row.nnz_e_max,
            );
            rows.push(row);
        }
    }
    pdslin_bench::write_json("table2_partition", &rows);
}
