//! Solve-phase benchmark: parallel SpMV, level-scheduled triangular
//! solves, end-to-end `Pdslin::solve` across worker counts, and batched
//! `Pdslin::solve_many` across batch sizes, with machine-readable
//! speedups in `BENCH_solve.json`.
//!
//! Every parallel result is checked for **exact** equality against the
//! serial run (the solve-phase kernels promise byte-identical output);
//! a mismatch aborts the process, which is what the CI smoke step
//! relies on. Speedups are recorded for trajectory tracking but never
//! asserted — CI runners (and single-core hosts) make them meaningless
//! to gate on.

use matgen::{MatrixKind, Scale};
use pdslin::{Pdslin, PdslinConfig};
use sparsekit::Csr;
use std::time::Instant;

pdslin_bench::json_record! {
    struct SolveRow {
        problem: String,
        kernel: String,
        workers: usize,
        batch: usize,
        seconds: f64,
        serial_seconds: f64,
        speedup: f64,
        matches_serial: bool,
        iterations: usize,
        // Schedule-shape columns, only meaningful for the trisolve
        // schedule rows (0 elsewhere): total sweeps (forward + backward
        // levels/stages) and the widest level in rows. CI gates on HBMC
        // having fewer sweeps and wider levels than level scheduling on
        // the 2D Laplacian.
        sweeps: usize,
        max_width: usize,
    }
}

const WORKERS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 3] = [1, 8, 64];

#[allow(clippy::too_many_arguments)]
fn push_row_sched(
    rows: &mut Vec<SolveRow>,
    problem: &str,
    kernel: &str,
    workers: usize,
    batch: usize,
    seconds: f64,
    serial_seconds: f64,
    matches_serial: bool,
    iterations: usize,
    sweeps: usize,
    max_width: usize,
) {
    let speedup = if seconds > 0.0 {
        serial_seconds / seconds
    } else {
        0.0
    };
    println!(
        "{problem:<16} {kernel:<14} w={workers} b={batch:<3} {:>10.4}s  speedup {speedup:>5.2}x  match={matches_serial}",
        seconds
    );
    assert!(
        matches_serial,
        "{problem}/{kernel} with {workers} workers (batch {batch}) diverged from the serial result"
    );
    rows.push(SolveRow {
        problem: problem.to_string(),
        kernel: kernel.to_string(),
        workers,
        batch,
        seconds,
        serial_seconds,
        speedup,
        matches_serial,
        iterations,
        sweeps,
        max_width,
    });
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<SolveRow>,
    problem: &str,
    kernel: &str,
    workers: usize,
    batch: usize,
    seconds: f64,
    serial_seconds: f64,
    matches_serial: bool,
    iterations: usize,
) {
    push_row_sched(
        rows,
        problem,
        kernel,
        workers,
        batch,
        seconds,
        serial_seconds,
        matches_serial,
        iterations,
        0,
        0,
    );
}

fn rhs_for(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (((i * 31 + seed * 7) % 23) as f64) - 11.0)
        .collect()
}

/// Chunked SpMV (`Csr::matvec_into_workers`), exact-equality checked.
fn bench_matvec(rows: &mut Vec<SolveRow>, problem: &str, a: &Csr, reps: usize) {
    let x = rhs_for(a.ncols(), 1);
    let mut y = vec![0.0; a.nrows()];
    let mut serial: Option<(Vec<f64>, f64)> = None;
    for &w in &WORKERS {
        a.matvec_into_workers(&x, &mut y, w); // warm-up
        let t0 = Instant::now();
        for _ in 0..reps {
            a.matvec_into_workers(&x, &mut y, w);
        }
        let secs = t0.elapsed().as_secs_f64();
        let (matches, serial_secs) = match &serial {
            None => {
                serial = Some((y.clone(), secs));
                (true, secs)
            }
            Some((ref_y, ref_secs)) => (y == *ref_y, *ref_secs),
        };
        push_row(rows, problem, "matvec", w, 1, secs, serial_secs, matches, 0);
    }
}

/// Level-scheduled subdomain triangular solves on the cached `LU(D)`
/// plans, exact-equality checked on the concatenated solutions.
fn bench_trisolve(rows: &mut Vec<SolveRow>, problem: &str, a: &Csr, reps: usize) {
    let part = pdslin::compute_partition(a, 4, &pdslin::PartitionerKind::Ngd);
    let sys = pdslin::extract_dbbd(a, part);
    let factors: Vec<_> = sys
        .domains
        .iter()
        .map(|d| pdslin::subdomain::factor_domain(&d.d, 0.1).expect("subdomain LU"))
        .collect();
    let bs: Vec<Vec<f64>> = sys.domains.iter().map(|d| rhs_for(d.dim(), 2)).collect();
    let mut xs: Vec<Vec<f64>> = sys.domains.iter().map(|d| vec![0.0; d.dim()]).collect();
    let mut tris: Vec<slu::TriScratch> =
        sys.domains.iter().map(|_| slu::TriScratch::new()).collect();
    let mut serial: Option<(Vec<Vec<f64>>, f64)> = None;
    for &w in &WORKERS {
        for ((fd, b), (x, tri)) in factors.iter().zip(&bs).zip(xs.iter_mut().zip(&mut tris)) {
            fd.lu.solve_into(b, x, tri, w); // warm-up
        }
        let t0 = Instant::now();
        for _ in 0..reps {
            for ((fd, b), (x, tri)) in factors.iter().zip(&bs).zip(xs.iter_mut().zip(&mut tris)) {
                fd.lu.solve_into(b, x, tri, w);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        let (matches, serial_secs) = match &serial {
            None => {
                serial = Some((xs.clone(), secs));
                (true, secs)
            }
            Some((ref_xs, ref_secs)) => (xs == *ref_xs, *ref_secs),
        };
        push_row(
            rows,
            problem,
            "trisolve",
            w,
            1,
            secs,
            serial_secs,
            matches,
            0,
        );
    }
}

/// End-to-end `Pdslin::solve` with `PDSLIN_THREADS` bounding the total
/// concurrency; the solution vector is exact-equality checked across
/// worker counts. The timed solve is the *second* one, so the arenas
/// are already grown and the measurement reflects steady state.
fn bench_solve(rows: &mut Vec<SolveRow>, problem: &str, a: &Csr) {
    let b = rhs_for(a.nrows(), 3);
    let mut serial: Option<(Vec<f64>, f64)> = None;
    for &w in &WORKERS {
        std::env::set_var(pdslin::par::THREADS_ENV, w.to_string());
        let cfg = PdslinConfig {
            k: 4,
            parallel: w > 1,
            ..Default::default()
        };
        let mut solver = Pdslin::setup(a, cfg).expect("setup");
        solver.solve(&b).expect("warm-up solve");
        let t0 = Instant::now();
        let out = solver.solve(&b).expect("solve");
        let secs = t0.elapsed().as_secs_f64();
        let (matches, serial_secs) = match &serial {
            None => {
                serial = Some((out.x.clone(), secs));
                (true, secs)
            }
            Some((ref_x, ref_secs)) => (out.x == *ref_x, *ref_secs),
        };
        push_row(
            rows,
            problem,
            "solve",
            w,
            1,
            secs,
            serial_secs,
            matches,
            out.iterations,
        );
    }
    std::env::remove_var(pdslin::par::THREADS_ENV);
}

/// Batched `Pdslin::solve_many` vs the same solves issued sequentially,
/// exact-equality checked per right-hand side (solution, iteration
/// count, and method label all have to agree).
fn bench_solve_many(rows: &mut Vec<SolveRow>, problem: &str, a: &Csr) {
    std::env::set_var(pdslin::par::THREADS_ENV, "4");
    let cfg = PdslinConfig {
        k: 4,
        parallel: true,
        ..Default::default()
    };
    let mut solver = Pdslin::setup(a, cfg).expect("setup");
    for &batch in &BATCHES {
        let rhs: Vec<Vec<f64>> = (0..batch).map(|s| rhs_for(a.nrows(), s)).collect();
        let t0 = Instant::now();
        let seq: Vec<_> = rhs
            .iter()
            .map(|b| solver.solve(b).expect("sequential solve"))
            .collect();
        let seq_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let many = solver.solve_many(&rhs).expect("batched solve");
        let secs = t0.elapsed().as_secs_f64();
        let matches = seq.len() == many.len()
            && seq
                .iter()
                .zip(&many)
                .all(|(s, m)| s.x == m.x && s.iterations == m.iterations && s.method == m.method);
        let iterations = many.iter().map(|o| o.iterations).max().unwrap_or(0);
        push_row(
            rows,
            problem,
            "solve_many",
            4,
            batch,
            secs,
            seq_secs,
            matches,
            iterations,
        );
    }
    std::env::remove_var(pdslin::par::THREADS_ENV);
}

/// Level-scheduled vs HBMC trisolve on one factor of the 2D Laplacian.
///
/// Emits one row per schedule and worker count with the schedule-shape
/// columns filled in: `sweeps` (forward + backward levels or stages) and
/// `max_width` (widest level, in rows). For the `trisolve_hbmc` rows,
/// `serial_seconds` is the **level-scheduled** time at the same worker
/// count, so the `speedup` column reads as level-vs-HBMC — the
/// comparison this benchmark exists for. CI gates on HBMC reporting
/// fewer sweeps and wider levels than level scheduling here (a
/// deterministic structural property, unlike the timings).
///
/// HBMC reorders per-row dependency sums, so its solutions are
/// tolerance-checked against the level schedule at switch time (the
/// `set_schedule` probe) rather than compared bitwise; within the HBMC
/// rows, worker counts are still exact-equality checked against the
/// single-worker HBMC run.
fn bench_trisolve_schedules(rows: &mut Vec<SolveRow>, problem: &str, a: &Csr, reps: usize) {
    let mut fd = pdslin::subdomain::factor_domain(a, 0.1).expect("laplacian LU");
    let b = rhs_for(fd.lu.n(), 4);
    let mut x = vec![0.0; fd.lu.n()];
    let mut tri = slu::TriScratch::new();
    let mut level_secs = [0f64; WORKERS.len()];
    for (schedule, kernel) in [
        (slu::TrisolveSchedule::Level, "trisolve_level"),
        (slu::TrisolveSchedule::Hbmc, "trisolve_hbmc"),
    ] {
        fd.lu
            .set_schedule(schedule)
            .expect("schedule probe must pass on the Laplacian");
        let plan = fd.lu.solve_plan();
        let (fs, fw) = plan.forward_levels();
        let (bs, bw) = plan.backward_levels();
        let (sweeps, max_width) = (fs + bs, fw.max(bw));
        let mut serial: Option<(Vec<f64>, f64)> = None;
        for (wi, &w) in WORKERS.iter().enumerate() {
            fd.lu.solve_into(&b, &mut x, &mut tri, w); // warm-up
            let t0 = Instant::now();
            for _ in 0..reps {
                fd.lu.solve_into(&b, &mut x, &mut tri, w);
            }
            let secs = t0.elapsed().as_secs_f64();
            let (matches, own_serial) = match &serial {
                None => {
                    serial = Some((x.clone(), secs));
                    (true, secs)
                }
                Some((ref_x, ref_secs)) => (x == *ref_x, *ref_secs),
            };
            let baseline = if schedule == slu::TrisolveSchedule::Level {
                level_secs[wi] = secs;
                own_serial
            } else {
                level_secs[wi]
            };
            push_row_sched(
                rows, problem, kernel, w, 1, secs, baseline, matches, 0, sweeps, max_width,
            );
        }
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let (nx, ny, reps) = match scale {
        Scale::Test => (50, 50, 20),
        Scale::Bench => (200, 200, 50),
    };
    let laplace = matgen::stencil::laplace2d(nx, ny);
    let laplace_name = format!("laplace2d({nx},{ny})");
    let circuits = [MatrixKind::G3Circuit, MatrixKind::Asic680ks];

    let mut rows = Vec::new();
    println!("Solve-phase benchmark: serial vs parallel (workers 1/2/4)\n");
    bench_matvec(&mut rows, &laplace_name, &laplace, reps);
    bench_trisolve(&mut rows, &laplace_name, &laplace, reps);
    bench_trisolve_schedules(&mut rows, &laplace_name, &laplace, reps);
    bench_solve(&mut rows, &laplace_name, &laplace);
    bench_solve_many(&mut rows, &laplace_name, &laplace);
    for kind in circuits {
        let a = matgen::generate(kind, scale);
        bench_matvec(&mut rows, kind.name(), &a, reps);
        bench_trisolve(&mut rows, kind.name(), &a, reps);
    }
    pdslin_bench::write_json("BENCH_solve", &rows);
    println!("\nall parallel results matched serial exactly");
}
