//! **§V-B(c)** — effect of removing quasi-dense rows before the
//! hypergraph RHS partitioning: setup (partitioning) time and padded-zero
//! fraction as a function of the density threshold τ, on the tdr190k
//! analogue (NGD, k = 8, B = 60).

use matgen::MatrixKind;
use pdslin::interface::g_solve_experiment;
use pdslin::RhsOrdering;

pdslin_bench::json_record! {
    struct QdRow {
        tau: f64,
        avg_padding_fraction: f64,
        total_order_seconds: f64,
        total_solve_seconds: f64,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let (_a, sys, factors) = pdslin_bench::ngd_factored_system(MatrixKind::Tdr190k, scale, 8);
    let b = 60usize;
    // τ = 1.1 keeps every nonempty row (density can't exceed 1.0).
    let taus = [1.1f64, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05];
    let mut rows = Vec::new();
    println!("Quasi-dense row removal (tdr190k analogue, B=60, hypergraph ordering)");
    println!(
        "{:<8} {:>14} {:>16} {:>16}",
        "tau", "avg padding", "order time (s)", "solve time (s)"
    );
    for &tau in &taus {
        let mut fracs = Vec::new();
        let mut order_secs = 0.0;
        let mut solve_secs = 0.0;
        for (dom, fd) in sys.domains.iter().zip(&factors) {
            let (stats, solve_s, order_s) =
                g_solve_experiment(fd, dom, b, RhsOrdering::Hypergraph { tau: Some(tau) });
            fracs.push(stats.padding_fraction());
            order_secs += order_s;
            solve_secs += solve_s;
        }
        let (_lo, avg, _hi) = pdslin_bench::min_avg_max(&fracs);
        println!("{tau:<8} {avg:>14.4} {order_secs:>16.3} {solve_secs:>16.3}");
        rows.push(QdRow {
            tau,
            avg_padding_fraction: avg,
            total_order_seconds: order_secs,
            total_solve_seconds: solve_secs,
        });
    }
    pdslin_bench::write_json("quasidense", &rows);
}
