//! Ablation: padding at **column** granularity (our Fig. 4 accounting)
//! vs **supernodal** granularity (the paper's solver pads whole
//! supernodes). Shows how much extra padding supernode rounding adds on
//! top of the block-union padding, per RHS ordering.

use matgen::MatrixKind;
use pdslin::interface::ehat_columns_pivot;
use pdslin::rhs_order::{column_reaches, order_columns_precomputed};
use pdslin::RhsOrdering;
use slu::supernodes::{supernodal_blocked_solve, SupernodePlan};
use slu::trisolve::{SolveWorkspace, SparseVec};

pdslin_bench::json_record! {
    struct SupernodalRow {
        matrix: String,
        ordering: String,
        block_size: usize,
        column_padding_fraction: f64,
        supernodal_padding_fraction: f64,
        supernode_count: usize,
        max_supernode: usize,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let kind = MatrixKind::Tdr190k;
    let (_a, sys, factors) = pdslin_bench::ngd_factored_system(kind, scale, 8);
    let orderings = [RhsOrdering::Natural, RhsOrdering::Postorder];
    let blocks = [30usize, 60, 120];
    let mut rows = Vec::new();
    println!("Supernodal vs column padding (tdr190k analogue, NGD k=8)");
    println!(
        "{:<12} {:<6} {:>14} {:>16} {:>8} {:>8}",
        "ordering", "B", "column pad", "supernodal pad", "#sn", "max sn"
    );
    for (dom, fd) in sys.domains.iter().zip(&factors).take(2) {
        let n = fd.lu.n();
        let plan = SupernodePlan::build(&fd.lu.l, 0);
        let sn = plan.supernodes();
        let mut ws = SolveWorkspace::new(n);
        let mut bws = slu::BlockWorkspace::new(n);
        let cols = ehat_columns_pivot(fd, dom);
        let reaches = column_reaches(&cols, &fd.lu.l, &mut ws);
        for &ord in &orderings {
            for &b in &blocks {
                let order = order_columns_precomputed(&cols, &reaches, n, b, ord);
                let ordered: Vec<SparseVec> = order.iter().map(|&j| cols[j].clone()).collect();
                let mut col_stats = slu::BlockSolveStats::default();
                let mut sn_stats = slu::BlockSolveStats::default();
                for chunk in ordered.chunks(b) {
                    let (_p, _panel, st) =
                        slu::blocked_lower_solve(&fd.lu.l, true, chunk, &mut bws);
                    col_stats.merge(&st);
                    let (_p2, _panel2, st2) =
                        supernodal_blocked_solve(&fd.lu.l, &plan, chunk, &mut ws);
                    sn_stats.merge(&st2);
                }
                println!(
                    "{:<12} {:<6} {:>14.4} {:>16.4} {:>8} {:>8}",
                    ord.label(),
                    b,
                    col_stats.padding_fraction(),
                    sn_stats.padding_fraction(),
                    sn.count(),
                    sn.max_size()
                );
                rows.push(SupernodalRow {
                    matrix: kind.name().to_string(),
                    ordering: ord.label().to_string(),
                    block_size: b,
                    column_padding_fraction: col_stats.padding_fraction(),
                    supernodal_padding_fraction: sn_stats.padding_fraction(),
                    supernode_count: sn.count(),
                    max_supernode: sn.max_size(),
                });
            }
        }
    }
    pdslin_bench::write_json("supernodal_padding", &rows);
}
