//! **Fig. 4 (a–d)** — fraction of padded zeros vs block size `B` for the
//! four RHS reordering techniques (natural, postorder, hypergraph, RGB),
//! reported as min/avg/max over the eight subdomains, on the tdr190k,
//! dds.quad, dds.linear and matrix211 analogues.
//!
//! Purely symbolic: per-column reaches are computed once per subdomain
//! and padding is counted from equation (14) for every (ordering, B).

use matgen::MatrixKind;
use pdslin::interface::ehat_columns_pivot;
use pdslin::rhs_order::{column_reaches, order_columns_precomputed, padding_of_order};
use pdslin::RhsOrdering;
use slu::trisolve::SolveWorkspace;

pdslin_bench::json_record! {
    struct Fig4Row {
        matrix: String,
        ordering: String,
        block_size: usize,
        min: f64,
        avg: f64,
        max: f64,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let kinds = [
        MatrixKind::Tdr190k,
        MatrixKind::DdsQuad,
        MatrixKind::DdsLinear,
        MatrixKind::Matrix211,
    ];
    let blocks = [10usize, 30, 60, 90, 120, 180, 240, 300];
    let orderings = [
        RhsOrdering::Natural,
        RhsOrdering::Postorder,
        RhsOrdering::Hypergraph { tau: Some(0.4) },
        RhsOrdering::Rgb(Default::default()),
    ];
    let mut rows = Vec::new();
    for kind in kinds {
        let (_a, sys, factors) = pdslin_bench::ngd_factored_system(kind, scale, 8);
        // Reaches once per subdomain.
        let domain_data: Vec<_> = sys
            .domains
            .iter()
            .zip(&factors)
            .map(|(dom, fd)| {
                let n = fd.lu.n();
                let mut ws = SolveWorkspace::new(n);
                let cols = ehat_columns_pivot(fd, dom);
                let reaches = column_reaches(&cols, &fd.lu.l, &mut ws);
                (cols, reaches, n)
            })
            .collect();
        println!(
            "\nFig 4 ({}): fraction of padded zeros (min/avg/max over 8 subdomains)",
            kind.name()
        );
        println!(
            "{:<6} {:>28} {:>28} {:>28} {:>28}",
            "B", "natural", "postorder", "hypergraph", "rgb"
        );
        for &b in &blocks {
            let mut cells = Vec::new();
            for &ord in &orderings {
                let fractions: Vec<f64> = domain_data
                    .iter()
                    .map(|(cols, reaches, n)| {
                        let order = order_columns_precomputed(cols, reaches, *n, b, ord);
                        let (padded, true_nnz) = padding_of_order(reaches, *n, &order, b);
                        if padded + true_nnz == 0 {
                            0.0
                        } else {
                            padded as f64 / (padded + true_nnz) as f64
                        }
                    })
                    .collect();
                let (lo, av, hi) = pdslin_bench::min_avg_max(&fractions);
                cells.push(format!("{lo:.3}/{av:.3}/{hi:.3}"));
                rows.push(Fig4Row {
                    matrix: kind.name().to_string(),
                    ordering: ord.label().to_string(),
                    block_size: b,
                    min: lo,
                    avg: av,
                    max: hi,
                });
            }
            println!(
                "{:<6} {:>28} {:>28} {:>28} {:>28}",
                b, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    pdslin_bench::write_json("fig4_padding", &rows);
}
