//! **Fig. 3 (a–d)** — load balance (max/min of dim(D), nnz(D), col(E),
//! nnz(E)), separator size and normalised PDSLin time for `tdr190k`,
//! with k = 8 and k = 32, single- and multi-constraint RHB under the
//! three cut metrics, against the NGD baseline.

use hypergraph::{ConstraintMode, CutMetric, RhbConfig};
use pdslin::{PartitionStats, PartitionerKind, Pdslin, PdslinConfig};

pdslin_bench::json_record! {
    struct Fig3Row {
        k: usize,
        constraint: String,
        algorithm: String,
        separator: usize,
        dim_balance: f64,
        nnz_d_balance: f64,
        col_e_balance: f64,
        nnz_e_balance: f64,
        total_seconds: f64,
        normalized_time: f64,
        iterations: usize,
    }
}

fn run(a: &sparsekit::Csr, k: usize, kind: PartitionerKind) -> (PartitionStats, f64, usize) {
    let cfg = PdslinConfig {
        k,
        partitioner: kind,
        parallel: false,
        schur_drop_tol: 1e-4,
        interface_drop_tol: 1e-6,
        ..Default::default()
    };
    let mut solver = Pdslin::setup(a, cfg).expect("setup");
    let b = vec![1.0; a.nrows()];
    let out = solver.solve(&b).expect("solve");
    let part = solver.sys.part.clone();
    let stats = PartitionStats::compute(a, &part);
    // The paper's §V configuration: one process per subdomain, so the
    // subdomain phases cost their maximum and imbalance shows up as time.
    let one_level = solver.stats.one_level_parallel_setup() + out.seconds;
    (stats, one_level, out.iterations)
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, scale);
    eprintln!("tdr190k analogue: n={} nnz={}", a.nrows(), a.nnz());
    let metrics = [CutMetric::Con1, CutMetric::Cnet, CutMetric::Soed];
    let mut rows: Vec<Fig3Row> = Vec::new();
    for &k in &[8usize, 32] {
        // NGD baseline first: its time normalises the group.
        let (ngd_stats, ngd_time, ngd_iters) = run(&a, k, PartitionerKind::Ngd);
        for constraint in [ConstraintMode::Single, ConstraintMode::Multi] {
            let cname = if constraint == ConstraintMode::Single {
                "single"
            } else {
                "multi"
            };
            println!("\nFig 3: k={k}, {cname}-constraint (time normalised to NGD)");
            println!(
                "{:<10} {:>7} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}",
                "alg", "sep", "dim(D)", "nnz(D)", "col(E)", "nnz(E)", "time", "iters"
            );
            for &metric in &metrics {
                let cfg = RhbConfig {
                    metric,
                    constraint,
                    ..Default::default()
                };
                let (st, time, iters) = run(&a, k, PartitionerKind::Rhb(cfg));
                let mname = match metric {
                    CutMetric::Con1 => "CON1",
                    CutMetric::Cnet => "CNET",
                    CutMetric::Soed => "SOED",
                };
                println!(
                    "{:<10} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>6}",
                    mname,
                    st.separator_size,
                    st.dim_balance(),
                    st.nnz_d_balance(),
                    st.col_e_balance(),
                    st.nnz_e_balance(),
                    time / ngd_time,
                    iters
                );
                rows.push(Fig3Row {
                    k,
                    constraint: cname.to_string(),
                    algorithm: mname.to_string(),
                    separator: st.separator_size,
                    dim_balance: st.dim_balance(),
                    nnz_d_balance: st.nnz_d_balance(),
                    col_e_balance: st.col_e_balance(),
                    nnz_e_balance: st.nnz_e_balance(),
                    total_seconds: time,
                    normalized_time: time / ngd_time,
                    iterations: iters,
                });
            }
            println!(
                "{:<10} {:>7} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>6}",
                "PT-SCOTCH*",
                ngd_stats.separator_size,
                ngd_stats.dim_balance(),
                ngd_stats.nnz_d_balance(),
                ngd_stats.col_e_balance(),
                ngd_stats.nnz_e_balance(),
                1.0,
                ngd_iters
            );
            rows.push(Fig3Row {
                k,
                constraint: cname.to_string(),
                algorithm: "NGD".to_string(),
                separator: ngd_stats.separator_size,
                dim_balance: ngd_stats.dim_balance(),
                nnz_d_balance: ngd_stats.nnz_d_balance(),
                col_e_balance: ngd_stats.col_e_balance(),
                nnz_e_balance: ngd_stats.nnz_e_balance(),
                total_seconds: ngd_time,
                normalized_time: 1.0,
                iterations: ngd_iters,
            });
        }
    }
    println!("\n(* our from-scratch multilevel NGD stands in for PT-Scotch)");
    pdslin_bench::write_json("fig3_balance", &rows);
}
