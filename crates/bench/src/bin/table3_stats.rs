//! **Table III** — statistics of the eight interior subdomains and
//! interfaces: nnz(G), nnzcol(G), nnzrow(G), effective density and
//! fill-ratio (min/max over the subdomains) for the tdr190k, dds.quad,
//! dds.linear and matrix211 analogues, under the Table-III setting
//! (NGD with 8 subdomains, minimum-degree ordering per subdomain).

use matgen::MatrixKind;
use pdslin::interface::ehat_columns_pivot;
use slu::trisolve::{solve_pattern, SolveWorkspace};

pdslin_bench::json_record! {
    struct Table3Row {
        matrix: String,
        which: String, // "min" or "max" over the 8 subdomains
        nnz_g: u64,
        nnzcol_g: usize,
        nnzrow_g: usize,
        eff_density: f64,
        fill_ratio: f64,
    }
}

fn main() {
    let scale = pdslin_bench::scale_from_env();
    let kinds = [
        MatrixKind::Tdr190k,
        MatrixKind::DdsQuad,
        MatrixKind::DdsLinear,
        MatrixKind::Matrix211,
    ];
    let mut rows = Vec::new();
    println!("Table III: subdomain/interface statistics (NGD, k=8)");
    println!(
        "{:<12} {:<4} {:>12} {:>10} {:>10} {:>11} {:>11}",
        "matrix", "", "nnzG", "nnzcolG", "nnzrowG", "eff.dens.", "fill-ratio"
    );
    for kind in kinds {
        let (_a, sys, factors) = pdslin_bench::ngd_factored_system(kind, scale, 8);
        // Per-subdomain symbolic G statistics.
        let mut per: Vec<(u64, usize, usize, f64, f64)> = Vec::new();
        for (dom, fd) in sys.domains.iter().zip(&factors) {
            let n = fd.lu.n();
            let mut ws = SolveWorkspace::new(n);
            let cols = ehat_columns_pivot(fd, dom);
            let mut nnz_g = 0u64;
            let mut row_touched = vec![false; n];
            for c in &cols {
                let pat = solve_pattern(&fd.lu.l, &c.indices, &mut ws);
                nnz_g += pat.len() as u64;
                for i in pat {
                    row_touched[i] = true;
                }
            }
            let nnzrow = row_touched.iter().filter(|&&t| t).count();
            let nnzcol = cols.len();
            let eff = if nnzcol * nnzrow > 0 {
                nnz_g as f64 / (nnzcol as f64 * nnzrow as f64)
            } else {
                0.0
            };
            let nnz_e = dom.e_hat.nnz() as u64;
            let fill = if nnz_e > 0 {
                nnz_g as f64 / nnz_e as f64
            } else {
                0.0
            };
            per.push((nnz_g, nnzcol, nnzrow, eff, fill));
        }
        for (which, pick) in [("min", true), ("max", false)] {
            // Min/max by nnzG (the paper reports row-wise min/max
            // per-column; we follow its convention of extremal
            // subdomains).
            let sel = if pick {
                per.iter().min_by_key(|p| p.0).unwrap()
            } else {
                per.iter().max_by_key(|p| p.0).unwrap()
            };
            println!(
                "{:<12} {:<4} {:>12} {:>10} {:>10} {:>11.4} {:>11.1}",
                if which == "min" { kind.name() } else { "" },
                which,
                sel.0,
                sel.1,
                sel.2,
                sel.3,
                sel.4
            );
            rows.push(Table3Row {
                matrix: kind.name().to_string(),
                which: which.to_string(),
                nnz_g: sel.0,
                nnzcol_g: sel.1,
                nnzrow_g: sel.2,
                eff_density: sel.3,
                fill_ratio: sel.4,
            });
        }
    }
    pdslin_bench::write_json("table3_stats", &rows);
}
