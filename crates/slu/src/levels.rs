//! Level-scheduled triangular solves.
//!
//! A sparse triangular solve looks inherently sequential, but its
//! dependency DAG usually is not: row `i` of `L x = b` only needs the
//! entries `x[j]` with `L[i,j] ≠ 0`, so rows whose dependencies are
//! already resolved can run concurrently. Grouping rows by the length
//! of their longest dependency chain — *level scheduling*, the standard
//! formulation behind parallel triangular solves — turns the sweep into
//! a short sequence of embarrassingly parallel phases.
//!
//! The plan is built **once at factorisation time** and flattened into
//! level order: position `p` of the execution vector holds one pivot
//! row, positions within a level are contiguous, and every dependency
//! of `p` lives at a strictly smaller position (an earlier level). Each
//! position is written by exactly one worker and its accumulation loop
//! is a fixed left-to-right sweep over the dependency list, so the
//! parallel result is **byte-identical** to the serial one — the
//! property every `bench_solve`/property-test assertion relies on.
//!
//! Cross-thread value passing uses `AtomicU64` bit-casts with relaxed
//! ordering; the inter-level spin barrier provides the happens-before
//! edges. This keeps the crate free of `unsafe` while compiling to
//! plain loads and stores on mainstream targets.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use sparsekit::{Csc, Perm};

/// Below this many rows a solve runs serially even when workers were
/// requested: spawning scoped threads costs more than the sweep itself.
const PAR_MIN_ROWS: usize = 256;

/// Process-wide count of [`SolvePlan::build`] executions. Plan
/// construction is the redundant symbolic work the lazy-plan and
/// refactorisation paths exist to avoid; reuse tests assert this
/// counter stays flat across decode round-trips and value updates.
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of triangular-solve plans built since process start (see
/// [`PLAN_BUILDS`]). Monotone; compare two readings to count builds in
/// between.
pub fn plan_build_count() -> u64 {
    PLAN_BUILDS.load(Ordering::Relaxed)
}

/// One triangular sweep (forward `L` or backward `U`) flattened into
/// level order.
#[derive(Clone, Debug)]
pub struct LevelPlan {
    /// `level_ptr[l]..level_ptr[l + 1]` are the positions of level `l`.
    pub(crate) level_ptr: Vec<usize>,
    /// Index in the sweep's *input* vector that seeds each position's
    /// accumulation.
    pub(crate) rhs_src: Vec<usize>,
    /// Dependency lists, CSR-like: position `p` reads the already-solved
    /// positions `dep_pos[dep_ptr[p]..dep_ptr[p + 1]]` scaled by
    /// `dep_val[..]`. Level scheduling keeps every dependency at a
    /// strictly earlier level; the HBMC schedule additionally allows
    /// same-level dependencies at earlier positions *within the same
    /// task* (see `tasks`).
    pub(crate) dep_ptr: Vec<usize>,
    pub(crate) dep_pos: Vec<usize>,
    pub(crate) dep_val: Vec<f64>,
    /// Diagonal divisor per position; empty for the unit-diagonal
    /// forward sweep.
    pub(crate) diag: Vec<f64>,
    /// Position → pivot row (the level order itself).
    pub(crate) order: Vec<usize>,
    /// Pivot row → position (inverse of `order`).
    pub(crate) pos: Vec<usize>,
    /// Worker-split granularity. `None` (level scheduling): any position
    /// split is safe, dependencies never share a level. `Some((task_ptr,
    /// level_task))` (HBMC): positions of one task (a row block) carry
    /// intra-task dependencies and must stay on one worker, so splits
    /// land on task boundaries — `task_ptr` holds the position
    /// boundaries, `level_task[l]..level_task[l + 1]` the tasks of level
    /// `l`.
    pub(crate) tasks: Option<(Vec<usize>, Vec<usize>)>,
}

impl LevelPlan {
    /// Number of rows in the sweep.
    pub fn n(&self) -> usize {
        self.rhs_src.len()
    }

    /// Number of levels (longest dependency chain).
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len().saturating_sub(1)
    }

    /// Widest level — the available parallelism of the sweep.
    pub fn max_level_width(&self) -> usize {
        self.level_ptr
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// Runs positions `a..b` of the sweep. All dependencies live at
    /// positions `< a` or were produced by this same call.
    ///
    /// The accumulation loop is lane-structured: products are computed
    /// in fixed-width [`LANES`](sparsekit::lanes::LANES) batches (the
    /// multiplies vectorize, the gathers pipeline) and folded into the
    /// accumulator strictly left-to-right — the exact op sequence of the
    /// plain scalar loop, so results stay byte-identical.
    #[inline]
    fn run_range(&self, a: usize, b: usize, input: &[f64], out: &[AtomicU64]) {
        use sparsekit::lanes::LANES;
        for p in a..b {
            let mut acc = input[self.rhs_src[p]];
            let deps = self.dep_ptr[p]..self.dep_ptr[p + 1];
            let dep_pos = &self.dep_pos[deps.clone()];
            let dep_val = &self.dep_val[deps];
            let mut cp = dep_pos.chunks_exact(LANES);
            let mut cv = dep_val.chunks_exact(LANES);
            for (pp, vv) in (&mut cp).zip(&mut cv) {
                let mut prod = [0f64; LANES];
                for l in 0..LANES {
                    prod[l] = vv[l] * f64::from_bits(out[pp[l]].load(Ordering::Relaxed));
                }
                for pr in prod {
                    acc -= pr;
                }
            }
            for (&dp, &dv) in cp.remainder().iter().zip(cv.remainder()) {
                acc -= dv * f64::from_bits(out[dp].load(Ordering::Relaxed));
            }
            if !self.diag.is_empty() {
                acc /= self.diag[p];
            }
            out[p].store(acc.to_bits(), Ordering::Relaxed);
        }
    }

    /// Rewrites the sweep's dependency values from (numerically
    /// updated) factor columns without touching any structure: each
    /// dependency slot of position `p` holds the factor entry at
    /// `(order[p], order[dep_pos])`, an invariant both the level and
    /// HBMC layouts preserve.
    pub(crate) fn refresh_numeric_from(&mut self, m: &Csc) {
        for p in 0..self.n() {
            let r = self.order[p];
            for s in self.dep_ptr[p]..self.dep_ptr[p + 1] {
                let c = self.order[self.dep_pos[s]];
                let k = m
                    .col_indices(c)
                    .binary_search(&r)
                    .expect("plan dependency missing from factor pattern");
                self.dep_val[s] = m.col_values(c)[k];
            }
        }
    }

    /// Position range of level `l` assigned to worker `t` of `workers`:
    /// an even position split for level plans, an even *task* split
    /// (aligned to row-block boundaries) for HBMC plans.
    #[inline]
    fn worker_range(&self, l: usize, t: usize, workers: usize) -> (usize, usize) {
        match &self.tasks {
            None => {
                let (s, e) = (self.level_ptr[l], self.level_ptr[l + 1]);
                let len = e - s;
                (s + len * t / workers, s + len * (t + 1) / workers)
            }
            Some((task_ptr, level_task)) => {
                let (ta, tb) = (level_task[l], level_task[l + 1]);
                let len = tb - ta;
                (
                    task_ptr[ta + len * t / workers],
                    task_ptr[ta + len * (t + 1) / workers],
                )
            }
        }
    }

    /// Executes the sweep into `out` (position order). With `workers <= 1`
    /// (or a trivially small system) everything runs on the calling
    /// thread; otherwise each level is split across `workers` scoped
    /// threads with a spin barrier between levels. Both paths perform
    /// the same arithmetic in the same order per position, so the
    /// results are byte-identical.
    fn execute(&self, input: &[f64], out: &[AtomicU64], workers: usize) {
        let n = self.n();
        debug_assert!(out.len() >= n);
        if workers <= 1 || n < PAR_MIN_ROWS {
            self.run_range(0, n, input, out);
            return;
        }
        let barrier = SpinBarrier::new(workers);
        let nlevels = self.num_levels();
        std::thread::scope(|sc| {
            for t in 0..workers {
                let barrier = &barrier;
                sc.spawn(move || {
                    for l in 0..nlevels {
                        let (a, b) = self.worker_range(l, t, workers);
                        self.run_range(a, b, input, out);
                        barrier.wait();
                    }
                });
            }
        });
    }
}

/// The full two-sweep (`L` then `U`) execution plan of an LU solve,
/// with the row/column permutations folded into the index maps.
#[derive(Clone, Debug)]
pub struct SolvePlan {
    pub(crate) fwd: LevelPlan,
    pub(crate) bwd: LevelPlan,
    /// Backward-sweep position → index in the caller's `x`.
    pub(crate) out_dst: Vec<usize>,
}

impl SolvePlan {
    /// Builds the plan from CSC factors in pivot order (`l` unit lower
    /// triangular, `u` upper triangular with the pivots on the
    /// diagonal), composing `row_perm` into the forward gather and
    /// `col_perm` into the final scatter.
    pub fn build(l: &Csc, u: &Csc, row_perm: &Perm, col_perm: &Perm) -> SolvePlan {
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = l.ncols();
        // Forward sweep: x[r] = (P b)[r] − Σ_{j<r} L[r,j]·x[j].
        let fwd = build_sweep(
            n,
            |j, f| {
                for (r, v) in l.col_iter(j) {
                    if r > j {
                        f(r, j, v);
                    }
                }
            },
            false,
            |k| row_perm.to_old(k),
        );
        // Backward sweep: x[j] = (z[j] − Σ_{k>j} U[j,k]·x[k]) / U[j,j],
        // where z is the forward sweep's output (read in its position
        // order).
        let mut bwd = build_sweep(
            n,
            |k, f| {
                for (j, v) in u.col_iter(k) {
                    if j < k {
                        f(j, k, v);
                    }
                }
            },
            true,
            |j| fwd.pos[j],
        );
        let mut udiag = vec![0.0f64; n];
        for k in 0..n {
            for (j, v) in u.col_iter(k) {
                if j == k {
                    udiag[k] = v;
                }
            }
        }
        bwd.diag = bwd.order.iter().map(|&j| udiag[j]).collect();
        let out_dst = bwd.order.iter().map(|&j| col_perm.to_old(j)).collect();
        SolvePlan { fwd, bwd, out_dst }
    }

    /// Forward (`L`) sweep statistics: `(levels, widest level)`.
    pub fn forward_levels(&self) -> (usize, usize) {
        (self.fwd.num_levels(), self.fwd.max_level_width())
    }

    /// Backward (`U`) sweep statistics: `(levels, widest level)`.
    pub fn backward_levels(&self) -> (usize, usize) {
        (self.bwd.num_levels(), self.bwd.max_level_width())
    }

    /// Executes both sweeps: `x = Qᵀ U⁻¹ L⁻¹ P b`, using (and growing,
    /// on first use) the caller's scratch. `x` is fully overwritten.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], scratch: &mut TriScratch, workers: usize) {
        let n = self.fwd.n();
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        scratch.prepare(n);
        self.fwd.execute(b, &scratch.bits, workers);
        for (m, bit) in scratch.mid[..n].iter_mut().zip(&scratch.bits) {
            *m = f64::from_bits(bit.load(Ordering::Relaxed));
        }
        self.bwd.execute(&scratch.mid[..n], &scratch.bits, workers);
        for (q, &dst) in self.out_dst.iter().enumerate() {
            x[dst] = f64::from_bits(scratch.bits[q].load(Ordering::Relaxed));
        }
    }

    /// Rewrites the plan's numeric payload (dependency values and `U`
    /// diagonal) from refactorised `L`/`U` with the same pattern; the
    /// schedule — levels, positions, dependency structure — is reused
    /// untouched, so this costs a value sweep instead of a
    /// [`SolvePlan::build`]. Works on level and HBMC plans alike.
    pub fn refresh_numeric(&mut self, l: &Csc, u: &Csc) {
        self.fwd.refresh_numeric_from(l);
        self.bwd.refresh_numeric_from(u);
        for p in 0..self.bwd.n() {
            let r = self.bwd.order[p];
            let k = u
                .col_indices(r)
                .binary_search(&r)
                .expect("U diagonal missing");
            self.bwd.diag[p] = u.col_values(r)[k];
        }
    }
}

/// Reusable buffers for [`SolvePlan::solve_into`]. One instance per
/// concurrently-solving caller; after the first solve of a given size,
/// subsequent solves allocate nothing (see [`TriScratch::allocations`]).
#[derive(Debug, Default)]
pub struct TriScratch {
    bits: Vec<AtomicU64>,
    mid: Vec<f64>,
    allocations: u64,
    resets: u64,
}

impl TriScratch {
    /// Fresh, empty scratch.
    pub fn new() -> TriScratch {
        TriScratch::default()
    }

    fn prepare(&mut self, n: usize) {
        self.resets += 1;
        if self.bits.len() < n {
            self.allocations += 1;
            self.bits.resize_with(n, || AtomicU64::new(0));
            self.mid.resize(n, 0.0);
        }
    }

    /// Number of times the buffers actually grew (1 after the first
    /// solve of the largest size seen; flat afterwards).
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of solves served (monotone; together with a flat
    /// [`TriScratch::allocations`] this proves the arena is being
    /// reused rather than rebuilt).
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

/// Builds one level-scheduled sweep.
///
/// `for_each_dep(col, f)` must call `f(row, col, value)` for every
/// strictly-off-diagonal entry `(row, col)` of the triangle, visiting
/// columns in ascending order (so each row's dependency list comes out
/// sorted by column — the fixed accumulation order). With
/// `descending_levels` the chains run from high indices down (the `U`
/// sweep); otherwise from low indices up (the `L` sweep). `rhs_of` maps
/// a pivot row to the index of its seed in the sweep's input vector.
fn build_sweep(
    n: usize,
    for_each_dep: impl Fn(usize, &mut dyn FnMut(usize, usize, f64)),
    descending_levels: bool,
    rhs_of: impl Fn(usize) -> usize,
) -> LevelPlan {
    // --- Row-major dependency lists (two-pass CSR build). ---
    let mut cnt = vec![0usize; n];
    for j in 0..n {
        for_each_dep(j, &mut |r, _c, _v| cnt[r] += 1);
    }
    let mut row_ptr = vec![0usize; n + 1];
    for i in 0..n {
        row_ptr[i + 1] = row_ptr[i] + cnt[i];
    }
    let nnz = row_ptr[n];
    let mut row_col = vec![0usize; nnz];
    let mut row_val = vec![0f64; nnz];
    let mut next = row_ptr.clone();
    for j in 0..n {
        for_each_dep(j, &mut |r, c, v| {
            row_col[next[r]] = c;
            row_val[next[r]] = v;
            next[r] += 1;
        });
    }
    // --- Levels: longest dependency chain. ---
    let mut level = vec![0usize; n];
    let rows: Box<dyn Iterator<Item = usize>> = if descending_levels {
        Box::new((0..n).rev())
    } else {
        Box::new(0..n)
    };
    for r in rows {
        let mut lvl = 0usize;
        for k in row_ptr[r]..row_ptr[r + 1] {
            lvl = lvl.max(level[row_col[k]] + 1);
        }
        level[r] = lvl;
    }
    let nlevels = level.iter().map(|&l| l + 1).max().unwrap_or(0);
    // --- Stable counting sort into level order. ---
    let mut level_ptr = vec![0usize; nlevels + 1];
    for &l in &level {
        level_ptr[l + 1] += 1;
    }
    for l in 0..nlevels {
        level_ptr[l + 1] += level_ptr[l];
    }
    let mut cursor = level_ptr.clone();
    let mut order = vec![0usize; n];
    let mut pos = vec![0usize; n];
    for r in 0..n {
        let p = cursor[level[r]];
        cursor[level[r]] += 1;
        order[p] = r;
        pos[r] = p;
    }
    // --- Remap dependencies into position space, in level order. ---
    let mut dep_ptr = vec![0usize; n + 1];
    for p in 0..n {
        dep_ptr[p + 1] = dep_ptr[p] + cnt[order[p]];
    }
    let mut dep_pos = vec![0usize; nnz];
    let mut dep_val = vec![0f64; nnz];
    for p in 0..n {
        let r = order[p];
        for (d, k) in (dep_ptr[p]..).zip(row_ptr[r]..row_ptr[r + 1]) {
            dep_pos[d] = pos[row_col[k]];
            dep_val[d] = row_val[k];
        }
    }
    let rhs_src = order.iter().map(|&r| rhs_of(r)).collect();
    LevelPlan {
        level_ptr,
        rhs_src,
        dep_ptr,
        dep_pos,
        dep_val,
        diag: Vec::new(),
        order,
        pos,
        tasks: None,
    }
}

/// A sense-reversing spin barrier for the inter-level synchronisation.
///
/// Triangular-solve levels are short (often microseconds); parking on a
/// mutex/condvar per level would dwarf the work, so workers spin. The
/// worker count is already clamped to the host's cores by the callers'
/// worker policy, so spinning never oversubscribes.
struct SpinBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            // Spin briefly for the common case (all workers on their own
            // core, levels are short), then yield so oversubscribed hosts
            // — CI runners with fewer cores than workers — still make
            // progress at scheduler speed instead of burning whole quanta.
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{LuConfig, LuFactors};
    use sparsekit::{Coo, Csr};

    fn laplace2d(nx: usize) -> Csr {
        let idx = |i: usize, j: usize| i * nx + j;
        let mut c = Coo::new(nx * nx, nx * nx);
        for i in 0..nx {
            for j in 0..nx {
                c.push(idx(i, j), idx(i, j), 4.0);
                if i + 1 < nx {
                    c.push_sym(idx(i, j), idx(i + 1, j), -1.0);
                }
                if j + 1 < nx {
                    c.push_sym(idx(i, j), idx(i, j + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn plan_levels_are_a_topological_order() {
        let a = laplace2d(8);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let plan = f.solve_plan();
        // Every dependency must sit at a strictly smaller position than
        // the row it feeds — that is the disjoint-write guarantee.
        for sweep in [&plan.fwd, &plan.bwd] {
            for p in 0..sweep.n() {
                for k in sweep.dep_ptr[p]..sweep.dep_ptr[p + 1] {
                    assert!(sweep.dep_pos[k] < p, "dependency not resolved before use");
                }
            }
            let (levels, widest) = (sweep.num_levels(), sweep.max_level_width());
            assert!(levels >= 1 && widest >= 1);
            assert_eq!(sweep.level_ptr[sweep.num_levels()], n);
        }
    }

    #[test]
    fn dependencies_stay_in_earlier_levels() {
        let a = laplace2d(6);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let plan = f.solve_plan();
        for sweep in [&plan.fwd, &plan.bwd] {
            let mut level_of_pos = vec![0usize; n];
            for l in 0..sweep.num_levels() {
                for p in sweep.level_ptr[l]..sweep.level_ptr[l + 1] {
                    level_of_pos[p] = l;
                }
            }
            for p in 0..n {
                for k in sweep.dep_ptr[p]..sweep.dep_ptr[p + 1] {
                    assert!(
                        level_of_pos[sweep.dep_pos[k]] < level_of_pos[p],
                        "level ordering violated"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_sweeps_match_serial_bit_for_bit() {
        let a = laplace2d(10); // 100 rows, below PAR_MIN_ROWS — force via larger grid
        let big = laplace2d(20); // 400 rows — exercises the threaded path
        for m in [a, big] {
            let n = m.nrows();
            let f = LuFactors::factorize(&m, &Perm::identity(n), &LuConfig::default()).unwrap();
            let b: Vec<f64> = (0..n).map(|i| ((i * 29 % 13) as f64) - 6.0).collect();
            let mut scratch = TriScratch::new();
            let mut serial = vec![0.0; n];
            f.solve_into(&b, &mut serial, &mut scratch, 1);
            for w in [2usize, 3, 4, 7] {
                let mut par = vec![f64::NAN; n];
                f.solve_into(&b, &mut par, &mut scratch, w);
                assert_eq!(par, serial, "workers {w}, n {n}");
            }
        }
    }

    #[test]
    fn scratch_reuse_counts_no_new_allocations() {
        let a = laplace2d(8);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let mut scratch = TriScratch::new();
        f.solve_into(&b, &mut x, &mut scratch, 1);
        let after_first = scratch.allocations();
        for _ in 0..5 {
            f.solve_into(&b, &mut x, &mut scratch, 1);
        }
        assert_eq!(
            scratch.allocations(),
            after_first,
            "steady-state solves must not grow the arena"
        );
        assert_eq!(scratch.resets(), 6);
    }
}
