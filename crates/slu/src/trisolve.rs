//! Sparse triangular solves with sparse right-hand sides.
//!
//! The nonzero pattern of `x = L⁻¹ b` for sparse `b` is the *reach* of
//! `b`'s pattern in the DAG of `L` (Gilbert's theorem); the symbolic
//! phase computes it once per column and the numeric phase only touches
//! those positions. This is the kernel PDSLin uses to form
//! `G = L⁻¹ P Ê` and `W = F̂ P̄ U⁻¹` (equation (5) of the paper).

use sparsekit::Csc;

/// A sparse vector: parallel `(indices, values)`, indices unordered
/// unless stated otherwise.
#[derive(Clone, Debug, Default)]
pub struct SparseVec {
    /// Nonzero positions.
    pub indices: Vec<usize>,
    /// Values parallel to `indices`.
    pub values: Vec<f64>,
}

impl SparseVec {
    /// Creates a sparse vector from parallel arrays.
    pub fn new(indices: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len());
        SparseVec { indices, values }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Drops entries with `|v| <= tol`, returning the number removed.
    pub fn drop_small(&mut self, tol: f64) -> usize {
        let before = self.indices.len();
        let mut w = 0usize;
        for r in 0..self.indices.len() {
            if self.values[r].abs() > tol {
                self.indices[w] = self.indices[r];
                self.values[w] = self.values[r];
                w += 1;
            }
        }
        self.indices.truncate(w);
        self.values.truncate(w);
        before - w
    }
}

/// Workspace for repeated sparse triangular solves on one matrix.
///
/// Holds the dense scatter array and visit marks so per-column solves
/// allocate nothing.
#[derive(Clone, Debug)]
pub struct SolveWorkspace {
    x: Vec<f64>,
    mark: Vec<usize>,
    stamp: usize,
    stack: Vec<(usize, usize)>,
    topo: Vec<usize>,
}

impl SolveWorkspace {
    /// Workspace for order-`n` solves.
    pub fn new(n: usize) -> Self {
        SolveWorkspace {
            x: vec![0.0; n],
            mark: vec![usize::MAX; n],
            stamp: 0,
            stack: Vec::new(),
            topo: Vec::new(),
        }
    }

    /// The reach left behind by the most recent symbolic pass
    /// ([`compute_reach`] or any solve), in topological order. Borrow
    /// this instead of [`solve_pattern`] when the caller only needs to
    /// *read* the pattern — it avoids the per-call allocation.
    pub fn topo(&self) -> &[usize] {
        &self.topo
    }
}

/// Computes the reach of `seeds` in the DAG of lower-triangular `l`
/// (edges from column `j` to every row index `> j` of that column),
/// leaving the result in `ws.topo` in **topological order** (every node
/// before the nodes it updates).
fn reach(l: &Csc, seeds: &[usize], ws: &mut SolveWorkspace) {
    ws.stamp = ws.stamp.wrapping_add(1);
    let stamp = ws.stamp;
    ws.topo.clear();
    for &seed in seeds {
        if ws.mark[seed] == stamp {
            continue;
        }
        ws.mark[seed] = stamp;
        ws.stack.push((seed, 0));
        while let Some(&(node, child)) = ws.stack.last() {
            let col = l.col_indices(node);
            let mut advanced = false;
            let mut c = child;
            while c < col.len() {
                let r = col[c];
                c += 1;
                if r > node && ws.mark[r] != stamp {
                    ws.mark[r] = stamp;
                    ws.stack.last_mut().unwrap().1 = c;
                    ws.stack.push((r, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                ws.topo.push(node);
                ws.stack.pop();
            }
        }
    }
    ws.topo.reverse();
}

/// Solves `T x = b` where `T` is lower triangular in CSC (such as `L`
/// from the LU, or `Uᵀ`), with a **sparse** right-hand side.
///
/// If `unit_diag` is set the diagonal is taken as 1 regardless of stored
/// values; otherwise the diagonal entry of every reached column must be
/// present. Returns `x` with indices in topological order.
pub fn sparse_lower_solve(
    l: &Csc,
    unit_diag: bool,
    b: &SparseVec,
    ws: &mut SolveWorkspace,
) -> SparseVec {
    reach(l, &b.indices, ws);
    for &i in &ws.topo {
        ws.x[i] = 0.0;
    }
    for (&i, &v) in b.indices.iter().zip(&b.values) {
        ws.x[i] = v;
    }
    let mut out = SparseVec::default();
    out.indices.reserve(ws.topo.len());
    out.values.reserve(ws.topo.len());
    // `ws.topo` is read via index to appease the borrow on `ws.x`.
    for t in 0..ws.topo.len() {
        let j = ws.topo[t];
        let mut xj = ws.x[j];
        if !unit_diag {
            let col = l.col_indices(j);
            let d = col
                .binary_search(&j)
                .expect("missing diagonal in triangular solve");
            xj /= l.col_values(j)[d];
            ws.x[j] = xj;
        }
        if xj != 0.0 {
            for (r, v) in l.col_iter(j) {
                if r > j {
                    ws.x[r] -= v * xj;
                }
            }
        }
        out.indices.push(j);
        out.values.push(xj);
    }
    out
}

/// Symbolic-only variant: the pattern of `T⁻¹ b` (topological order).
pub fn solve_pattern(l: &Csc, b_pattern: &[usize], ws: &mut SolveWorkspace) -> Vec<usize> {
    reach(l, b_pattern, ws);
    ws.topo.clone()
}

/// Allocation-free [`solve_pattern`]: computes the reach of `b_pattern`
/// and leaves it in the workspace, readable via
/// [`SolveWorkspace::topo`]. Hot loops that only inspect the pattern
/// (e.g. padding accounting in the blocked solver) use this to avoid
/// cloning the topological order per column.
pub fn compute_reach(l: &Csc, b_pattern: &[usize], ws: &mut SolveWorkspace) {
    reach(l, b_pattern, ws);
}

/// Computes the full pattern of `G = T⁻¹ B` for a sparse RHS matrix `B`
/// given in CSC, returning a CSR **pattern** matrix (`n × ncols(B)` with
/// unit values) whose column `j` is the reach of `B(:,j)`.
pub fn solution_pattern(l: &Csc, b: &Csc) -> sparsekit::Csr {
    let n = l.nrows();
    let mut ws = SolveWorkspace::new(n);
    let mut coo = sparsekit::Coo::new(n, b.ncols());
    for j in 0..b.ncols() {
        let pat = solve_pattern(l, b.col_indices(j), &mut ws);
        for i in pat {
            coo.push(i, j, 1.0);
        }
    }
    coo.to_csr()
}

/// Builds the lower-triangular CSC view of `Uᵀ` from an upper-triangular
/// CSC `U` (column `j` of `Uᵀ` is row `j` of `U`).
pub fn lower_from_upper_transpose(u: &Csc) -> Csc {
    // CSR of U = CSC of Uᵀ.
    let ucsr = u.to_csr();
    Csc::from_parts(
        u.ncols(),
        u.nrows(),
        ucsr.indptr().to_vec(),
        ucsr.indices().to_vec(),
        ucsr.values().to_vec(),
    )
}

/// [`lower_from_upper_transpose`] that also records each transpose
/// entry's source position in `u`'s value array: `ut.values()[i] ==
/// u.values()[src[i]]`. A caller transposing a factor that is refreshed
/// in place across a solve sequence (same pattern, new values) keeps the
/// structure and replays only the value permutation.
pub fn transpose_with_sources(u: &Csc) -> (Csc, Vec<usize>) {
    let nnz = u.nnz();
    let mut colptr = vec![0usize; u.nrows() + 1];
    for &r in u.rowind() {
        colptr[r + 1] += 1;
    }
    for i in 0..u.nrows() {
        colptr[i + 1] += colptr[i];
    }
    let mut cursor = colptr[..u.nrows()].to_vec();
    let mut rowind = vec![0usize; nnz];
    let mut values = vec![0f64; nnz];
    let mut src = vec![0usize; nnz];
    for j in 0..u.ncols() {
        let base = u.colptr()[j];
        for (k, (&r, &v)) in u.col_indices(j).iter().zip(u.col_values(j)).enumerate() {
            let dst = cursor[r];
            cursor[r] += 1;
            rowind[dst] = j;
            values[dst] = v;
            src[dst] = base + k;
        }
    }
    let ut = Csc::from_parts(u.ncols(), u.nrows(), colptr, rowind, values);
    (ut, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Coo;

    /// Lower bidiagonal L with unit diagonal and subdiagonal -0.5.
    fn bidiag_l(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
            if i + 1 < n {
                c.push(i + 1, i, -0.5);
            }
        }
        c.to_csr().to_csc()
    }

    #[test]
    fn sparse_solve_matches_dense_forward_substitution() {
        let n = 10;
        let l = bidiag_l(n);
        let b = SparseVec::new(vec![3], vec![2.0]);
        let mut ws = SolveWorkspace::new(n);
        let x = sparse_lower_solve(&l, true, &b, &mut ws);
        // Dense reference.
        let mut xd = vec![0.0; n];
        xd[3] = 2.0;
        for i in 4..n {
            xd[i] = 0.5 * xd[i - 1];
        }
        for (&i, &v) in x.indices.iter().zip(&x.values) {
            assert!((v - xd[i]).abs() < 1e-14);
        }
        // Pattern = fill path 3..n.
        let mut idx = x.indices.clone();
        idx.sort_unstable();
        assert_eq!(idx, (3..n).collect::<Vec<_>>());
    }

    #[test]
    fn reach_is_topological() {
        let l = bidiag_l(8);
        let mut ws = SolveWorkspace::new(8);
        let pat = solve_pattern(&l, &[2, 5], &mut ws);
        // Every index appears after its dependencies (here simply
        // ascending within each chain).
        let pos: std::collections::HashMap<usize, usize> =
            pat.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        for w in 2..8usize {
            if let (Some(&a), Some(&b)) = (pos.get(&w.saturating_sub(1)), pos.get(&w)) {
                assert!(a < b, "node {} must precede {}", w - 1, w);
            }
        }
    }

    #[test]
    fn non_unit_diagonal_divides() {
        // L = [2 0; 1 4]
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 2.0);
        c.push(1, 0, 1.0);
        c.push(1, 1, 4.0);
        let l = c.to_csr().to_csc();
        let mut ws = SolveWorkspace::new(2);
        let x = sparse_lower_solve(&l, false, &SparseVec::new(vec![0], vec![2.0]), &mut ws);
        let mut m = std::collections::HashMap::new();
        for (&i, &v) in x.indices.iter().zip(&x.values) {
            m.insert(i, v);
        }
        assert!((m[&0] - 1.0).abs() < 1e-14);
        assert!((m[&1] + 0.25).abs() < 1e-14);
    }

    #[test]
    fn solution_pattern_covers_reaches() {
        let l = bidiag_l(6);
        // B with columns seeded at 1 and 4.
        let mut c = Coo::new(6, 2);
        c.push(1, 0, 1.0);
        c.push(4, 1, 1.0);
        let b = c.to_csr().to_csc();
        let g = solution_pattern(&l, &b);
        assert_eq!(g.nrows(), 6);
        assert_eq!(g.ncols(), 2);
        // Column 0 pattern = rows 1..6; column 1 = rows 4..6.
        for i in 1..6 {
            assert_eq!(g.get(i, 0), 1.0);
        }
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(4, 1), 1.0);
        assert_eq!(g.get(5, 1), 1.0);
        assert_eq!(g.get(3, 1), 0.0);
    }

    #[test]
    fn upper_transpose_is_lower() {
        // U = [1 2; 0 3] -> Uᵀ = [1 0; 2 3]
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        c.push(1, 1, 3.0);
        let u = c.to_csr().to_csc();
        let lt = lower_from_upper_transpose(&u);
        assert_eq!(lt.get(0, 0), 1.0);
        assert_eq!(lt.get(1, 0), 2.0);
        assert_eq!(lt.get(1, 1), 3.0);
        assert_eq!(lt.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_with_sources_matches_and_replays_values() {
        // A ragged upper factor with a dense-ish last column.
        let mut c = Coo::new(4, 4);
        for j in 0..4 {
            c.push(j, j, 1.0 + j as f64);
        }
        c.push(0, 2, 5.0);
        c.push(1, 3, 6.0);
        c.push(0, 3, 7.0);
        let mut u = c.to_csr().to_csc();
        let (ut, src) = transpose_with_sources(&u);
        assert_eq!(ut, lower_from_upper_transpose(&u));
        for (i, &s) in src.iter().enumerate() {
            assert_eq!(ut.values()[i], u.values()[s]);
        }
        // Refresh the values in place (same pattern) and replay the
        // permutation: the result must equal a from-scratch transpose.
        for v in u.values_mut() {
            *v *= -2.0;
        }
        let mut replayed = ut.clone();
        for (i, &s) in src.iter().enumerate() {
            replayed.values_mut()[i] = u.values()[s];
        }
        assert_eq!(replayed, lower_from_upper_transpose(&u));
    }

    #[test]
    fn drop_small_removes_entries() {
        let mut v = SparseVec::new(vec![0, 1, 2], vec![1.0, 1e-12, -2.0]);
        let dropped = v.drop_small(1e-8);
        assert_eq!(dropped, 1);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.indices, vec![0, 2]);
    }
}
