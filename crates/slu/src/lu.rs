//! Gilbert–Peierls left-looking sparse LU with threshold partial
//! pivoting (the algorithm family behind SuperLU).

use std::sync::OnceLock;

use crate::hbmc::{ScheduleError, TrisolveSchedule, HBMC_BLOCK, HBMC_EQUIV_TOL};
use crate::levels::{SolvePlan, TriScratch};
use sparsekit::budget::{Budget, BudgetInterrupt};
use sparsekit::{Csc, Csr, Perm};

/// Configuration for the numeric factorisation.
#[derive(Clone, Copy, Debug)]
pub struct LuConfig {
    /// Threshold pivoting parameter in `(0, 1]`: the diagonal candidate is
    /// kept when `|a_dd| ≥ pivot_threshold · max_i |a_id|`. `1.0` is
    /// classical partial pivoting.
    pub pivot_threshold: f64,
    /// SuperLU_DIST-style small-pivot perturbation: when `Some(ε)` and an
    /// elimination step finds no admissible pivot (or only one with
    /// `|pivot| ≤ ε·‖A‖_max`), the pivot is *replaced* by `±ε·‖A‖_max`
    /// instead of failing. The factorisation then completes for any
    /// input, at the price of being approximate — callers are expected
    /// to compensate with iterative refinement or an outer Krylov
    /// method, and the perturbed steps are reported in
    /// [`LuFactors::perturbed`]. `None` (the default) keeps the strict
    /// behaviour: a singular step is a [`LuError::Singular`].
    pub diag_perturb: Option<f64>,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            pivot_threshold: 0.1,
            diag_perturb: None,
        }
    }
}

/// Factorisation failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuError {
    /// No admissible pivot at the given elimination step (matrix is
    /// structurally or numerically singular).
    Singular {
        /// The elimination step at which no pivot was found.
        step: usize,
    },
    /// A NaN or ±Inf was encountered — in the input matrix or generated
    /// during elimination. Factoring poison silently would let it
    /// propagate into every downstream solve.
    NonFinite {
        /// The elimination step at which the non-finite value surfaced
        /// (0 when detected during input validation).
        step: usize,
    },
    /// The execution budget (deadline or cancellation) interrupted the
    /// elimination. The factorisation is abandoned — partial factors are
    /// never returned.
    Interrupted {
        /// The elimination step at which the interrupt was observed.
        step: usize,
        /// What fired.
        interrupt: BudgetInterrupt,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular { step } => write!(f, "matrix singular at elimination step {step}"),
            LuError::NonFinite { step } => {
                write!(f, "non-finite value (NaN/Inf) at elimination step {step}")
            }
            LuError::Interrupted { step, interrupt } => {
                write!(f, "factorisation interrupted at step {step}: {interrupt}")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// Why an incremental [`LuFactors::refactorize`] was refused or
/// abandoned. None of these corrupt the factors: on every error path
/// except [`RefactorizeError::ScheduleRejected`] the numeric payload
/// may be partially rewritten, so callers recover by re-factorising
/// from scratch (which is exactly what the driver's fallback does).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefactorizeError {
    /// The factors carry no symbolic record (they were reassembled via
    /// [`LuFactors::from_parts`] or decoded from a checkpoint, which
    /// transports only `L`/`U`).
    SymbolicMissing,
    /// The original factorisation perturbed pivots
    /// ([`LuFactors::perturbed`]); replaying a patched pivot sequence
    /// against new values is not meaningful.
    Perturbed,
    /// The new matrix is not the same order as the factored one.
    SizeMismatch {
        /// Order of the stored factors.
        expected: usize,
        /// Order of the supplied matrix.
        got: usize,
    },
    /// A NaN/Inf appeared in the input (step 0) or during replay.
    NonFinite {
        /// Elimination step (0 for input validation).
        step: usize,
    },
    /// A stored pivot position evaluated to exactly zero under the new
    /// values — the recorded pivot sequence no longer works.
    ZeroPivot {
        /// Elimination step with the vanished pivot.
        step: usize,
    },
    /// The new matrix has an entry outside the recorded sparsity
    /// pattern (refactorisation requires an identical pattern).
    PatternMismatch {
        /// Elimination step at which the foreign entry surfaced.
        step: usize,
    },
    /// Replay produced a nonzero in an `L` position the original
    /// factorisation dropped as an exact zero — the stored pattern
    /// cannot hold the new factors.
    PatternDeviation {
        /// Elimination step at which the pattern no longer fits.
        step: usize,
    },
    /// The factors ran an HBMC schedule and the post-refactorisation
    /// equivalence probe rejected it under the new values. The numeric
    /// refactorisation itself *succeeded* and the factors are left on
    /// the (always valid) level schedule.
    ScheduleRejected {
        /// Measured probe deviation.
        rel_err: f64,
        /// Tolerance it exceeded.
        tol: f64,
    },
}

impl std::fmt::Display for RefactorizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefactorizeError::SymbolicMissing => {
                write!(f, "factors carry no symbolic record (decoded/reassembled)")
            }
            RefactorizeError::Perturbed => {
                write!(f, "original factorisation used perturbed pivots")
            }
            RefactorizeError::SizeMismatch { expected, got } => {
                write!(
                    f,
                    "matrix order {got} does not match factored order {expected}"
                )
            }
            RefactorizeError::NonFinite { step } => {
                write!(
                    f,
                    "non-finite value (NaN/Inf) at refactorisation step {step}"
                )
            }
            RefactorizeError::ZeroPivot { step } => {
                write!(f, "stored pivot vanished at refactorisation step {step}")
            }
            RefactorizeError::PatternMismatch { step } => {
                write!(f, "entry outside the recorded pattern at step {step}")
            }
            RefactorizeError::PatternDeviation { step } => {
                write!(f, "fill escapes the recorded factor pattern at step {step}")
            }
            RefactorizeError::ScheduleRejected { rel_err, tol } => {
                write!(
                    f,
                    "refactorised values rejected the HBMC schedule: deviation {rel_err:.3e} exceeds {tol:.3e} (level schedule active)"
                )
            }
        }
    }
}

impl std::error::Error for RefactorizeError {}

/// The symbolic record of a factorisation: the per-step topological
/// reach (original row ids, in the exact order the numeric loop visited
/// them) plus, per reach entry, the flat index of the value slot it
/// feeds in the assembled `L` or `U`. Replaying elimination against
/// this record skips the DFS, the pivot search, and the CSC assembly —
/// the entire pattern-dependent cost of [`LuFactors::factorize`].
#[derive(Clone, Debug)]
struct LuSymbolic {
    /// `topo_ptr[k]..topo_ptr[k + 1]` is step `k`'s reach.
    topo_ptr: Vec<usize>,
    /// Reach entries in **pivot coordinates** (`row_perm.to_new`), in
    /// stored visit order. `L`'s assembled row indices are in the same
    /// coordinates, so the replay's inner update loop runs without any
    /// per-entry permutation lookups.
    topo_new: Vec<usize>,
    /// Per reach entry: index into `u.values` when the row was pivotal
    /// by step `k` (pivot position ≤ k), into `l.values` otherwise;
    /// `usize::MAX` marks an `L` entry the original factorisation
    /// dropped as an exact zero (no slot exists).
    slot: Vec<usize>,
}

/// The LU factorisation `L·U = P·A·Qᵀ` of a square sparse matrix.
///
/// `L` is unit lower triangular (unit diagonal stored explicitly), `U`
/// upper triangular; both are in CSC with row indices in **pivot order**.
/// `row_perm` maps pivot position → original row (`to_old`); `col_perm`
/// is the fill-reducing column permutation supplied by the caller.
#[derive(Clone, Debug)]
pub struct LuFactors {
    /// Unit lower-triangular factor.
    pub l: Csc,
    /// Upper-triangular factor (diagonal = pivots).
    pub u: Csc,
    /// Row permutation from pivoting.
    pub row_perm: Perm,
    /// Column permutation (fill-reducing ordering).
    pub col_perm: Perm,
    /// Elimination steps whose pivot was replaced by `±ε·‖A‖_max`
    /// (empty unless [`LuConfig::diag_perturb`] was enabled *and* the
    /// matrix was singular or near-singular at those steps).
    pub perturbed: Vec<usize>,
    /// Execution plan for the triangular solves, built lazily on first
    /// use so decode paths (checkpoint resume, service cache, shard
    /// ledger) pay nothing until they actually solve (see
    /// [`crate::levels`]). Level-scheduled by default; an accepted
    /// [`LuFactors::set_schedule`] call swaps in the HBMC reordering.
    plan: OnceLock<SolvePlan>,
    /// Which schedule `plan` encodes once built.
    schedule: TrisolveSchedule,
    /// Symbolic record enabling [`LuFactors::refactorize`]; `None` for
    /// factors reassembled from parts (the record is not transported).
    symbolic: Option<LuSymbolic>,
}

impl LuFactors {
    /// Factorises `a` using the given fill-reducing column permutation.
    ///
    /// For (pattern-)symmetric matrices pass the same permutation you
    /// would use symmetrically; rows are re-pivoted numerically anyway.
    pub fn factorize(a: &Csr, col_perm: &Perm, cfg: &LuConfig) -> Result<LuFactors, LuError> {
        Self::factorize_budgeted(a, col_perm, cfg, &Budget::unlimited())
    }

    /// [`LuFactors::factorize`] under an execution budget: the
    /// elimination loop polls the budget (amortised over steps) and
    /// aborts with [`LuError::Interrupted`] on a deadline overrun or
    /// cancellation, instead of running to completion.
    pub fn factorize_budgeted(
        a: &Csr,
        col_perm: &Perm,
        cfg: &LuConfig,
        budget: &Budget,
    ) -> Result<LuFactors, LuError> {
        assert_eq!(a.nrows(), a.ncols(), "LU requires a square matrix");
        assert_eq!(col_perm.len(), a.ncols());
        assert!(cfg.pivot_threshold > 0.0 && cfg.pivot_threshold <= 1.0);
        let n = a.nrows();
        let acsc = a.to_csc();
        // ‖A‖_max for the perturbation magnitude, plus an up-front poison
        // check (NaN never wins a `>` comparison, so it would otherwise
        // slip through pivot selection unnoticed).
        let mut anorm = 0.0f64;
        for j in 0..n {
            for &v in acsc.col_values(j) {
                if !v.is_finite() {
                    return Err(LuError::NonFinite { step: 0 });
                }
                anorm = anorm.max(v.abs());
            }
        }
        let tiny = cfg.diag_perturb.map(|eps| eps * anorm.max(1.0));
        let mut perturbed: Vec<usize> = Vec::new();
        // Growing factors; row indices are *original* row ids during the
        // factorisation and are remapped to pivot order at the end.
        let mut lcols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut ucols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut pinv = vec![usize::MAX; n]; // original row -> pivot step
        let mut x = vec![0f64; n];
        let mut mark = vec![usize::MAX; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        // Symbolic record for `refactorize`: each step's reach in visit
        // order (slots resolved after assembly).
        let mut topo_ptr: Vec<usize> = Vec::with_capacity(n + 1);
        topo_ptr.push(0);
        let mut topo_row: Vec<usize> = Vec::new();
        let mut ticker = budget.ticker(64);
        for k in 0..n {
            if let Err(interrupt) = ticker.tick() {
                return Err(LuError::Interrupted { step: k, interrupt });
            }
            let col = col_perm.to_old(k);
            // --- Symbolic: reach of A(:, col) in the graph of L. ---
            topo.clear();
            for &seed in acsc.col_indices(col) {
                if mark[seed] == k {
                    continue;
                }
                // Iterative DFS, pushing nodes in finish order.
                dfs_stack.push((seed, 0));
                mark[seed] = k;
                while let Some(&mut (node, ref mut child)) = dfs_stack.last_mut() {
                    let j = pinv[node];
                    let kids: &[(usize, f64)] = if j == usize::MAX { &[] } else { &lcols[j] };
                    let mut advanced = false;
                    while *child < kids.len() {
                        let (r, _) = kids[*child];
                        *child += 1;
                        if mark[r] != k {
                            mark[r] = k;
                            dfs_stack.push((r, 0));
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }
            // Finish order is reverse-topological; reverse it so each node
            // precedes everything it updates.
            topo.reverse();
            // --- Numeric: x = L \ A(:, col) on the reach set. ---
            for &i in &topo {
                x[i] = 0.0;
            }
            for (i, v) in acsc.col_iter(col) {
                x[i] = v;
            }
            for &i in &topo {
                let j = pinv[i];
                if j == usize::MAX {
                    continue;
                }
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for &(r, v) in &lcols[j] {
                    if r != i {
                        x[r] -= v * xi;
                    }
                }
            }
            // --- Pivot among not-yet-pivotal reach entries. ---
            let mut ipiv = usize::MAX;
            let mut amax = -1.0f64;
            for &i in &topo {
                if pinv[i] == usize::MAX {
                    let t = x[i].abs();
                    if t > amax {
                        amax = t;
                        ipiv = i;
                    }
                }
            }
            if !amax.is_finite() {
                return Err(LuError::NonFinite { step: k });
            }
            let degenerate = ipiv == usize::MAX || amax <= 0.0;
            let near_singular = tiny.is_some_and(|t| !degenerate && amax <= t);
            let pivot;
            if degenerate || near_singular {
                let Some(t) = tiny else {
                    return Err(LuError::Singular { step: k });
                };
                // SuperLU_DIST-style recovery: substitute a small pivot
                // `±ε·‖A‖_max` so elimination can continue. Prefer the
                // diagonal position; fall back to any not-yet-pivotal row
                // (one always exists: k rows are pivotal before step k).
                if pinv[col] == usize::MAX {
                    ipiv = col;
                } else if ipiv == usize::MAX {
                    ipiv = (0..n)
                        .find(|&i| pinv[i] == usize::MAX)
                        .expect("unpivoted row exists");
                }
                let old = if mark[ipiv] == k { x[ipiv] } else { 0.0 };
                pivot = if old < 0.0 { -t } else { t };
                x[ipiv] = pivot;
                if mark[ipiv] != k {
                    // Row was outside the reach set: give it a synthetic
                    // entry so the U-column split below records the pivot.
                    mark[ipiv] = k;
                    topo.push(ipiv);
                }
                perturbed.push(k);
            } else {
                // Prefer the diagonal entry when it passes the threshold
                // test.
                if pinv[col] == usize::MAX && x[col].abs() >= cfg.pivot_threshold * amax {
                    ipiv = col;
                }
                pivot = x[ipiv];
            }
            if !pivot.is_finite() {
                return Err(LuError::NonFinite { step: k });
            }
            pinv[ipiv] = k;
            // --- Split the reach into the U column and the L column. ---
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            lcol.push((ipiv, 1.0));
            for &i in &topo {
                let pi = pinv[i];
                if i == ipiv {
                    continue;
                }
                if pi != usize::MAX {
                    ucol.push((pi, x[i]));
                } else {
                    let v = x[i] / pivot;
                    if v != 0.0 {
                        lcol.push((i, v));
                    }
                }
            }
            ucol.push((k, pivot));
            ucols.push(ucol);
            lcols.push(lcol);
            topo_row.extend_from_slice(&topo);
            topo_ptr.push(topo_row.len());
        }
        // --- Assemble CSC factors in pivot order. ---
        let row_perm = Perm::from_to_new(pinv);
        let l = assemble_csc(n, &lcols, |old_row| row_perm.to_new(old_row));
        let u = assemble_csc(n, &ucols, |r| r);
        // --- Resolve each reach entry to its value slot, converting the
        // reach to pivot coordinates along the way (the replay works
        // entirely in pivot space). ---
        let topo_new: Vec<usize> = topo_row.iter().map(|&i| row_perm.to_new(i)).collect();
        drop(topo_row);
        let mut slot = vec![usize::MAX; topo_new.len()];
        for k in 0..n {
            for (s, &pi) in slot[topo_ptr[k]..topo_ptr[k + 1]]
                .iter_mut()
                .zip(&topo_new[topo_ptr[k]..topo_ptr[k + 1]])
            {
                if pi <= k {
                    let t = u
                        .col_indices(k)
                        .binary_search(&pi)
                        .expect("pivotal reach entry present in U");
                    *s = u.colptr()[k] + t;
                } else if let Ok(t) = l.col_indices(k).binary_search(&pi) {
                    *s = l.colptr()[k] + t;
                }
            }
        }
        Ok(LuFactors {
            l,
            u,
            row_perm,
            col_perm: col_perm.clone(),
            perturbed,
            plan: OnceLock::new(),
            schedule: TrisolveSchedule::Level,
            symbolic: Some(LuSymbolic {
                topo_ptr,
                topo_new,
                slot,
            }),
        })
    }

    /// Reassembles a factorisation from its transported parts — the use
    /// case is factors computed in another *process* (`crates/shard`)
    /// and shipped over a wire that preserves every `f64` bit.
    ///
    /// The private level-scheduled [`SolvePlan`] is rebuilt **lazily**
    /// on the first solve: decode paths that never solve (checkpoint
    /// inspection, cache shuffling) pay nothing, and the plan only
    /// schedules the same fixed left-to-right dependency sweeps, so
    /// solves through a reconstructed factorisation are bit-identical
    /// to solves through the original. The symbolic refactorisation
    /// record is *not* transported — reassembled factors report
    /// [`RefactorizeError::SymbolicMissing`].
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree on the matrix order (`L`/`U` not
    /// square and equal-sized, permutations of a different length).
    pub fn from_parts(
        l: Csc,
        u: Csc,
        row_perm: Perm,
        col_perm: Perm,
        perturbed: Vec<usize>,
    ) -> LuFactors {
        let n = l.ncols();
        assert_eq!(l.nrows(), n, "L must be square");
        assert_eq!(u.nrows(), n, "U must match L");
        assert_eq!(u.ncols(), n, "U must match L");
        assert_eq!(row_perm.len(), n, "row permutation length mismatch");
        assert_eq!(col_perm.len(), n, "column permutation length mismatch");
        LuFactors {
            l,
            u,
            row_perm,
            col_perm,
            perturbed,
            plan: OnceLock::new(),
            schedule: TrisolveSchedule::Level,
            symbolic: None,
        }
    }

    /// Order of the factored matrix.
    pub fn n(&self) -> usize {
        self.l.ncols()
    }

    /// Fill: `nnz(L) + nnz(U)` (L's unit diagonal included).
    pub fn fill(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Solves `A x = b` (dense right-hand side).
    ///
    /// Convenience wrapper over [`LuFactors::solve_into`] with a fresh
    /// scratch and no parallelism; hot paths should hold a persistent
    /// [`TriScratch`] and call `solve_into` directly.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0f64; self.n()];
        self.solve_into(b, &mut x, &mut TriScratch::new(), 1);
        x
    }

    /// Solves `A x = b` into a caller-provided output using the cached
    /// level-scheduled plan. `x` is fully overwritten; after the first
    /// call of a given size the scratch is reused without allocating.
    /// The result is byte-identical for every `workers` value.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64], scratch: &mut TriScratch, workers: usize) {
        self.solve_plan().solve_into(b, x, scratch, workers);
    }

    /// The triangular-solve plan (level-scheduled unless an HBMC
    /// schedule was accepted), built on first use and cached.
    pub fn solve_plan(&self) -> &SolvePlan {
        self.plan
            .get_or_init(|| SolvePlan::build(&self.l, &self.u, &self.row_perm, &self.col_perm))
    }

    /// The schedule the current plan encodes.
    pub fn schedule(&self) -> TrisolveSchedule {
        self.schedule
    }

    /// Switches the triangular-solve schedule with the default
    /// equivalence tolerance [`HBMC_EQUIV_TOL`]; see
    /// [`LuFactors::set_schedule_with_tol`].
    pub fn set_schedule(&mut self, schedule: TrisolveSchedule) -> Result<(), ScheduleError> {
        self.set_schedule_with_tol(schedule, HBMC_EQUIV_TOL)
    }

    /// Switches the triangular-solve schedule.
    ///
    /// Switching to [`TrisolveSchedule::Level`] always succeeds and
    /// restores solves byte-identical to the freshly-factorised state.
    /// Switching to [`TrisolveSchedule::Hbmc`] reorders each row's
    /// dependency sum, so it is gated behind an equivalence probe: a
    /// deterministic right-hand side is solved through both plans and the
    /// HBMC plan is accepted only when the relative ∞-norm deviation is
    /// within `tol`. On rejection (deviation above `tol`, or a
    /// non-finite probe) the factors keep their current plan and the
    /// typed [`ScheduleError`] reports the measured deviation.
    pub fn set_schedule_with_tol(
        &mut self,
        schedule: TrisolveSchedule,
        tol: f64,
    ) -> Result<(), ScheduleError> {
        if schedule == self.schedule {
            return Ok(());
        }
        match schedule {
            TrisolveSchedule::Level => {
                self.plan = OnceLock::new();
                self.schedule = TrisolveSchedule::Level;
                Ok(())
            }
            TrisolveSchedule::Hbmc => {
                // `self.schedule` is Level here, so `solve_plan()` is
                // the level plan the probe compares against.
                let hbmc = self.solve_plan().to_hbmc(HBMC_BLOCK);
                let n = self.n();
                let b: Vec<f64> = (0..n)
                    .map(|i| ((i * 37 % 19) as f64) * 0.25 - 2.0)
                    .collect();
                let mut scratch = TriScratch::new();
                let mut x_level = vec![0f64; n];
                let mut x_hbmc = vec![0f64; n];
                self.solve_plan()
                    .solve_into(&b, &mut x_level, &mut scratch, 1);
                hbmc.solve_into(&b, &mut x_hbmc, &mut scratch, 1);
                let denom = x_level
                    .iter()
                    .fold(0f64, |m, v| m.max(v.abs()))
                    .max(f64::MIN_POSITIVE);
                let rel_err = x_level
                    .iter()
                    .zip(&x_hbmc)
                    .fold(0f64, |m, (a, b)| m.max((a - b).abs()))
                    / denom;
                // `!(x <= tol)` also rejects NaN deviations; the
                // clippy-preferred `rel_err > tol` would accept them.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(rel_err <= tol) {
                    return Err(ScheduleError { rel_err, tol });
                }
                self.plan = OnceLock::from(hbmc);
                self.schedule = TrisolveSchedule::Hbmc;
                Ok(())
            }
        }
    }

    /// Re-runs the numeric elimination against `a`'s **values**, reusing
    /// every symbolic artifact of the original factorisation: the
    /// per-step reaches, the pivot sequence, the assembled `L`/`U`
    /// patterns, and the triangular-solve schedule. Only the value
    /// arrays (and the plan's numeric payload) are rewritten — no DFS,
    /// no pivot search, no assembly, no plan build.
    ///
    /// `a` must have the **same sparsity pattern** as the originally
    /// factored matrix (same order; entries only where the original had
    /// them — a subset pattern is accepted, the missing entries read as
    /// zero). Values may differ arbitrarily: the stored pivot order is
    /// *replayed*, so with identical values the result is bit-identical
    /// to a fresh [`LuFactors::factorize`], and with drifted values it
    /// is an exact LU of the new matrix under the old pivot sequence
    /// (numeric quality degrades gradually with drift — callers pair
    /// this with a staleness policy).
    ///
    /// On any error except [`RefactorizeError::ScheduleRejected`] the
    /// numeric payload may be partially rewritten; recover by
    /// re-factorising from scratch. `ScheduleRejected` means the
    /// refactorisation itself succeeded but the HBMC schedule failed
    /// its re-probe under the new values; the factors are left solving
    /// correctly on the level schedule.
    pub fn refactorize(&mut self, a: &Csr) -> Result<(), RefactorizeError> {
        let n = self.n();
        if a.nrows() != n || a.ncols() != n {
            return Err(RefactorizeError::SizeMismatch {
                expected: n,
                got: a.nrows().max(a.ncols()),
            });
        }
        if !self.perturbed.is_empty() {
            return Err(RefactorizeError::Perturbed);
        }
        let Some(sym) = self.symbolic.as_ref() else {
            return Err(RefactorizeError::SymbolicMissing);
        };
        let acsc = a.to_csc();
        if acsc.values().iter().any(|v| !v.is_finite()) {
            return Err(RefactorizeError::NonFinite { step: 0 });
        }
        let mut x = vec![0f64; n];
        let mut mark = vec![usize::MAX; n];
        let (l_colptr, l_rowind, lv) = self.l.parts_mut();
        let (_, _, uv) = self.u.parts_mut();
        for k in 0..n {
            let col = self.col_perm.to_old(k);
            let topo = &sym.topo_new[sym.topo_ptr[k]..sym.topo_ptr[k + 1]];
            // --- Scatter A(:, col) over the stored reach, in pivot
            // coordinates. ---
            for &p in topo {
                x[p] = 0.0;
                mark[p] = k;
            }
            for (i, v) in acsc.col_iter(col) {
                let p = self.row_perm.to_new(i);
                if mark[p] != k {
                    return Err(RefactorizeError::PatternMismatch { step: k });
                }
                x[p] = v;
            }
            // --- Replay x = L \ A(:, col) in the stored visit order.
            // Update targets are distinct rows per source, all inside
            // the reach, so iterating the assembled (sorted) L column
            // instead of the original insertion order changes nothing.
            // `L`'s row indices are pivot coordinates too, so the inner
            // loop needs no permutation lookups.
            for &j in topo {
                if j >= k {
                    continue;
                }
                let xi = x[j];
                if xi == 0.0 {
                    continue;
                }
                for t in l_colptr[j]..l_colptr[j + 1] {
                    let r = l_rowind[t];
                    if r != j {
                        x[r] -= lv[t] * xi;
                    }
                }
            }
            // --- Replay the stored pivot; write values through slots. ---
            let pivot = x[k];
            if !pivot.is_finite() {
                return Err(RefactorizeError::NonFinite { step: k });
            }
            if pivot == 0.0 {
                return Err(RefactorizeError::ZeroPivot { step: k });
            }
            for (&pi, &s) in topo
                .iter()
                .zip(&sym.slot[sym.topo_ptr[k]..sym.topo_ptr[k + 1]])
            {
                if pi < k {
                    uv[s] = x[pi];
                } else if pi == k {
                    uv[s] = pivot;
                } else {
                    let v = x[pi] / pivot;
                    if !v.is_finite() {
                        return Err(RefactorizeError::NonFinite { step: k });
                    }
                    if s == usize::MAX {
                        if v != 0.0 {
                            return Err(RefactorizeError::PatternDeviation { step: k });
                        }
                    } else {
                        lv[s] = v;
                    }
                }
            }
        }
        // --- Refresh the solve schedule's numeric payload. ---
        match self.schedule {
            TrisolveSchedule::Level => {
                if let Some(plan) = self.plan.get_mut() {
                    plan.refresh_numeric(&self.l, &self.u);
                }
                Ok(())
            }
            TrisolveSchedule::Hbmc => {
                // The HBMC structure is still valid, but its acceptance
                // was tolerance-gated against the *old* values — re-run
                // the probe. On rejection fall back to the level
                // schedule (always correct) and report it.
                self.plan = OnceLock::new();
                self.schedule = TrisolveSchedule::Level;
                self.set_schedule(TrisolveSchedule::Hbmc).map_err(|e| {
                    RefactorizeError::ScheduleRejected {
                        rel_err: e.rel_err,
                        tol: e.tol,
                    }
                })
            }
        }
    }
}

fn assemble_csc(n: usize, cols: &[Vec<(usize, f64)>], map_row: impl Fn(usize) -> usize) -> Csc {
    let mut colptr = vec![0usize; n + 1];
    let nnz: usize = cols.iter().map(|c| c.len()).sum();
    let mut rowind = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    for (j, col) in cols.iter().enumerate() {
        scratch.clear();
        scratch.extend(col.iter().map(|&(r, v)| (map_row(r), v)));
        scratch.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &scratch {
            rowind.push(r);
            values.push(v);
        }
        colptr[j + 1] = rowind.len();
    }
    Csc::from_parts(n, n, colptr, rowind, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::ops::residual_inf_norm;
    use sparsekit::Coo;

    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push_sym(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    fn laplace2d(nx: usize) -> Csr {
        let idx = |i: usize, j: usize| i * nx + j;
        let mut c = Coo::new(nx * nx, nx * nx);
        for i in 0..nx {
            for j in 0..nx {
                c.push(idx(i, j), idx(i, j), 4.0);
                if i + 1 < nx {
                    c.push_sym(idx(i, j), idx(i + 1, j), -1.0);
                }
                if j + 1 < nx {
                    c.push_sym(idx(i, j), idx(i, j + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn factor_and_solve_tridiagonal() {
        let a = tridiag(50);
        let f = LuFactors::factorize(&a, &Perm::identity(50), &LuConfig::default()).unwrap();
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        assert!(residual_inf_norm(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn factor_and_solve_2d_laplacian() {
        let a = laplace2d(12);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let b = vec![1.0; n];
        let x = f.solve(&b);
        assert!(residual_inf_norm(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] has a zero diagonal and needs row pivoting.
        let mut c = Coo::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let f = LuFactors::factorize(&a, &Perm::identity(2), &LuConfig::default()).unwrap();
        let x = f.solve(&[3.0, 4.0]);
        assert!((x[0] - 4.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_reports_error() {
        // Second column is structurally empty below/at its pivot search.
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let err = LuFactors::factorize(&a, &Perm::identity(2), &LuConfig::default());
        assert!(matches!(err, Err(LuError::Singular { .. })));
    }

    #[test]
    fn fill_reducing_permutation_reduces_fill_on_arrow() {
        // Arrow matrix with the dense row/col FIRST: natural order fills
        // completely; reversing the order gives zero fill.
        let n = 30;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 4.0);
        }
        for i in 1..n {
            c.push_sym(0, i, 1.0);
        }
        let a = c.to_csr();
        let f_nat = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let rev = Perm::from_to_old((0..n).rev().collect());
        let f_rev = LuFactors::factorize(&a, &rev, &LuConfig::default()).unwrap();
        assert!(
            f_rev.fill() < f_nat.fill(),
            "reversed arrow should fill less: {} vs {}",
            f_rev.fill(),
            f_nat.fill()
        );
        // Both must still solve correctly.
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        assert!(residual_inf_norm(&a, &f_nat.solve(&b), &b) < 1e-10);
        assert!(residual_inf_norm(&a, &f_rev.solve(&b), &b) < 1e-10);
    }

    #[test]
    fn perturbation_completes_singular_factorisation() {
        // Structurally singular (empty second column): strict mode fails,
        // perturbed mode completes and reports the patched step.
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let cfg = LuConfig {
            diag_perturb: Some(1e-8),
            ..Default::default()
        };
        let f = LuFactors::factorize(&a, &Perm::identity(2), &cfg).unwrap();
        assert_eq!(
            f.perturbed.len(),
            1,
            "exactly one pivot should be perturbed"
        );
        // The factors are usable: L·U is nonsingular by construction.
        let x = f.solve(&[1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn perturbation_untouched_on_regular_matrix() {
        let a = tridiag(30);
        let cfg = LuConfig {
            diag_perturb: Some(1e-10),
            ..Default::default()
        };
        let f = LuFactors::factorize(&a, &Perm::identity(30), &cfg).unwrap();
        assert!(
            f.perturbed.is_empty(),
            "regular matrix must not be perturbed"
        );
        let b = vec![1.0; 30];
        let x = f.solve(&b);
        assert!(residual_inf_norm(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn nan_input_reports_nonfinite() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, f64::NAN);
        c.push(1, 1, 1.0);
        let a = c.to_csr();
        let err = LuFactors::factorize(&a, &Perm::identity(2), &LuConfig::default());
        assert!(matches!(err, Err(LuError::NonFinite { .. })), "got {err:?}");
        // Perturbation must NOT mask poison — NaN is an error either way.
        let cfg = LuConfig {
            diag_perturb: Some(1e-8),
            ..Default::default()
        };
        let err = LuFactors::factorize(&a, &Perm::identity(2), &cfg);
        assert!(matches!(err, Err(LuError::NonFinite { .. })));
    }

    #[test]
    fn unsymmetric_matrix_solve() {
        let mut c = Coo::new(4, 4);
        c.push(0, 0, 3.0);
        c.push(0, 2, 1.0);
        c.push(1, 1, 2.0);
        c.push(1, 0, -1.0);
        c.push(2, 2, 5.0);
        c.push(2, 3, 2.0);
        c.push(3, 3, 4.0);
        c.push(3, 1, 1.5);
        let a = c.to_csr();
        let f = LuFactors::factorize(&a, &Perm::identity(4), &LuConfig::default()).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.0];
        let x = f.solve(&b);
        assert!(residual_inf_norm(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn cancelled_budget_interrupts_factorisation() {
        let a = laplace2d(12); // 144 elimination steps — past the tick stride
        let tok = sparsekit::CancelToken::new();
        tok.cancel();
        let budget = sparsekit::Budget::unlimited().with_token(tok);
        let err =
            LuFactors::factorize_budgeted(&a, &Perm::identity(144), &LuConfig::default(), &budget);
        assert!(
            matches!(err, Err(LuError::Interrupted { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let a = tridiag(40);
        let f = LuFactors::factorize_budgeted(
            &a,
            &Perm::identity(40),
            &LuConfig::default(),
            &sparsekit::Budget::unlimited(),
        )
        .unwrap();
        let b = vec![1.0; 40];
        assert!(residual_inf_norm(&a, &f.solve(&b), &b) < 1e-10);
    }

    #[test]
    fn l_is_unit_lower_u_is_upper() {
        let a = laplace2d(6);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        for j in 0..n {
            let lr = f.l.col_indices(j);
            assert!(
                lr.iter().all(|&r| r >= j),
                "L has entry above diagonal in col {j}"
            );
            let d = lr.binary_search(&j).expect("L diagonal missing");
            assert_eq!(f.l.col_values(j)[d], 1.0);
            let ur = f.u.col_indices(j);
            assert!(
                ur.iter().all(|&r| r <= j),
                "U has entry below diagonal in col {j}"
            );
        }
    }

    #[test]
    fn refactorize_identical_values_is_bit_identical() {
        let a = laplace2d(10);
        let n = a.nrows();
        let fresh = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let mut re = fresh.clone();
        re.refactorize(&a).unwrap();
        assert_eq!(fresh.l.values(), re.l.values());
        assert_eq!(fresh.u.values(), re.u.values());
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        assert_eq!(fresh.solve(&b), re.solve(&b));
    }

    #[test]
    fn refactorize_drifted_values_factors_the_new_matrix() {
        let a = laplace2d(9);
        let n = a.nrows();
        let mut f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let mut a2 = a.clone();
        for (t, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= 1.0 + 1e-3 * (((t * 31 % 17) as f64) - 8.0);
        }
        f.refactorize(&a2).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let x = f.solve(&b);
        assert!(
            residual_inf_norm(&a2, &x, &b) < 1e-9,
            "refactorised solve must satisfy the NEW matrix"
        );
    }

    #[test]
    fn refactorize_refreshes_hbmc_plan() {
        let a = laplace2d(12);
        let n = a.nrows();
        let mut f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        f.set_schedule(TrisolveSchedule::Hbmc)
            .expect("probe passes");
        let mut a2 = a.clone();
        for v in a2.values_mut().iter_mut() {
            *v *= 1.01;
        }
        f.refactorize(&a2).unwrap();
        assert_eq!(f.schedule(), TrisolveSchedule::Hbmc);
        let b = vec![1.0; n];
        let x = f.solve(&b);
        assert!(residual_inf_norm(&a2, &x, &b) < 1e-8);
    }

    #[test]
    fn refactorize_rejects_foreign_pattern() {
        let a = tridiag(20);
        let mut f = LuFactors::factorize(&a, &Perm::identity(20), &LuConfig::default()).unwrap();
        // A matrix with an extra off-pattern entry must be refused.
        let mut c = Coo::new(20, 20);
        for i in 0..20 {
            c.push(i, i, 2.0);
            if i + 1 < 20 {
                c.push_sym(i, i + 1, -1.0);
            }
        }
        c.push(0, 19, 0.5);
        let b = c.to_csr();
        assert!(matches!(
            f.refactorize(&b),
            Err(RefactorizeError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn refactorize_refused_without_symbolic_record() {
        let a = tridiag(10);
        let f = LuFactors::factorize(&a, &Perm::identity(10), &LuConfig::default()).unwrap();
        let mut g = LuFactors::from_parts(
            f.l.clone(),
            f.u.clone(),
            f.row_perm.clone(),
            f.col_perm.clone(),
            f.perturbed.clone(),
        );
        assert_eq!(g.refactorize(&a), Err(RefactorizeError::SymbolicMissing));
    }

    #[test]
    fn refactorize_refused_after_perturbation() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let cfg = LuConfig {
            diag_perturb: Some(1e-8),
            ..Default::default()
        };
        let mut f = LuFactors::factorize(&a, &Perm::identity(2), &cfg).unwrap();
        assert_eq!(f.refactorize(&a), Err(RefactorizeError::Perturbed));
    }

    #[test]
    fn lazy_plan_builds_once_per_factorisation() {
        let a = laplace2d(8);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let before = crate::plan_build_count();
        let b = vec![1.0; n];
        let x1 = f.solve(&b);
        let after_first = crate::plan_build_count();
        assert_eq!(after_first, before + 1, "first solve builds the plan");
        let x2 = f.solve(&b);
        assert_eq!(crate::plan_build_count(), after_first, "plan is cached");
        assert_eq!(x1, x2);
        // A refactorize refreshes values without a plan rebuild.
        let mut g = f.clone();
        g.solve(&b);
        let c0 = crate::plan_build_count();
        g.refactorize(&a).unwrap();
        g.solve(&b);
        assert_eq!(
            crate::plan_build_count(),
            c0,
            "refactorize must not rebuild the plan"
        );
    }

    #[test]
    fn from_parts_round_trip_solves_bit_identically() {
        let a = laplace2d(9);
        let n = a.nrows();
        let f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let g = LuFactors::from_parts(
            f.l.clone(),
            f.u.clone(),
            f.row_perm.clone(),
            f.col_perm.clone(),
            f.perturbed.clone(),
        );
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert_eq!(f.solve(&b), g.solve(&b));
        assert_eq!(
            f.solve_plan().forward_levels(),
            g.solve_plan().forward_levels()
        );
    }
}
