//! In-tree dense microkernels for the supernodal panel solves.
//!
//! These are the BLAS-3 building blocks the supernodal trisolve
//! ([`crate::supernodes`]) runs instead of per-entry sparse updates: a
//! small `dtrsm`-like unit-lower panel solve over a supernode's diagonal
//! block, and a register-tiled `dgemm`-like rank-`w` update of the rows
//! below it. Both operate on the blocked solver's row-major
//! `rows × bsize` panels and on supernode blocks packed at plan-build
//! time ([`crate::supernodes::SupernodePlan`]).
//!
//! **Bit-identity contract.** Every kernel performs, per destination
//! cell, exactly the same sequence of individually-rounded IEEE-754
//! operations as the scalar reference loop (ascending source column
//! within the supernode, one multiply and one subtract per entry, no
//! FMA contraction — stable Rust never contracts `a - b * c`). Lanes
//! only batch *independent* cells, so the results are bit-identical to
//! the scalar path; the property tests in `tests/prop_microkernels.rs`
//! pin this on the full `matgen` zoo. See `docs/kernels.md`.

pub use sparsekit::lanes::LANES;

use sparsekit::lanes::axpy_neg;

/// Solves the supernode's diagonal block in place: `panel` holds the
/// `w` supernode rows (row-major, `bsize` columns each), already seeded
/// with the right-hand sides; `diag` is the packed `w × w` column-major
/// unit-lower diagonal block (strict upper triangle unused, unit
/// diagonal not read).
///
/// Column order is ascending, matching the scalar reference: row `kk`
/// receives the updates from columns `jj < kk` in ascending `jj`.
#[inline]
pub fn trsm_unit_lower(diag: &[f64], w: usize, panel: &mut [f64], bsize: usize) {
    debug_assert!(diag.len() >= w * w);
    debug_assert!(panel.len() >= w * bsize);
    for jj in 0..w {
        let (head, tail) = panel.split_at_mut((jj + 1) * bsize);
        let xrow = &head[jj * bsize..];
        for (kk, row) in tail.chunks_exact_mut(bsize).take(w - jj - 1).enumerate() {
            axpy_neg(row, xrow, diag[jj * w + (jj + 1 + kk)]);
        }
    }
}

/// Rank-`w` update of one below-the-block panel row:
/// `dst[c] -= Σ_jj coeffs[jj] · xs[jj·bsize + c]`.
///
/// `xs` is the supernode's solved `w × bsize` panel (row-major,
/// contiguous because supernode rows are adjacent in the union
/// pattern); `coeffs` holds the `w` factor entries of this destination
/// row, packed row-major at plan-build time. The `c` loop is tiled into
/// [`LANES`]-wide register accumulators; per cell the subtractions run
/// in ascending `jj` — the scalar reference order.
#[inline]
pub fn rank_update_row(dst: &mut [f64], xs: &[f64], coeffs: &[f64], bsize: usize) {
    let w = coeffs.len();
    debug_assert!(xs.len() >= w * bsize);
    debug_assert_eq!(dst.len(), bsize);
    let mut tiles = dst.chunks_exact_mut(LANES);
    let mut c = 0usize;
    for tile in &mut tiles {
        let mut acc = [0f64; LANES];
        acc.copy_from_slice(tile);
        for (jj, &v) in coeffs.iter().enumerate() {
            let x = &xs[jj * bsize + c..jj * bsize + c + LANES];
            for l in 0..LANES {
                acc[l] -= v * x[l];
            }
        }
        tile.copy_from_slice(&acc);
        c += LANES;
    }
    for (l, d) in tiles.into_remainder().iter_mut().enumerate() {
        let mut acc = *d;
        for (jj, &v) in coeffs.iter().enumerate() {
            acc -= v * xs[jj * bsize + c + l];
        }
        *d = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: entry-at-a-time, ascending source column, the
    /// exact loop the pre-microkernel solver ran.
    fn trsm_reference(diag: &[f64], w: usize, panel: &mut [f64], bsize: usize) {
        for jj in 0..w {
            for kk in jj + 1..w {
                let v = diag[jj * w + kk];
                for cc in 0..bsize {
                    panel[kk * bsize + cc] -= v * panel[jj * bsize + cc];
                }
            }
        }
    }

    fn update_reference(dst: &mut [f64], xs: &[f64], coeffs: &[f64], bsize: usize) {
        for (jj, &v) in coeffs.iter().enumerate() {
            for cc in 0..bsize {
                dst[cc] -= v * xs[jj * bsize + cc];
            }
        }
    }

    fn pseudo(seed: usize, k: usize) -> f64 {
        // Deterministic, sign-mixed, exponent-spread values: any
        // reassociation or contraction shows up in the low bits.
        let t = ((seed * 2654435761 + k * 40503) % 1013) as f64 - 506.0;
        t * (10f64).powi(((seed + k) % 7) as i32 - 3)
    }

    #[test]
    fn trsm_bit_identical_to_reference() {
        for (w, bsize) in [(2usize, 1usize), (3, 4), (5, 7), (8, 32), (13, 60)] {
            let diag: Vec<f64> = (0..w * w).map(|k| pseudo(1, k)).collect();
            let mut a: Vec<f64> = (0..w * bsize).map(|k| pseudo(2, k)).collect();
            let mut b = a.clone();
            trsm_unit_lower(&diag, w, &mut a, bsize);
            trsm_reference(&diag, w, &mut b, bsize);
            assert_eq!(a, b, "w = {w}, bsize = {bsize}");
        }
    }

    #[test]
    fn rank_update_bit_identical_to_reference() {
        for (w, bsize) in [(1usize, 1usize), (2, 3), (4, 4), (6, 17), (9, 64)] {
            let xs: Vec<f64> = (0..w * bsize).map(|k| pseudo(3, k)).collect();
            let coeffs: Vec<f64> = (0..w).map(|k| pseudo(4, k)).collect();
            let mut a: Vec<f64> = (0..bsize).map(|k| pseudo(5, k)).collect();
            let mut b = a.clone();
            rank_update_row(&mut a, &xs, &coeffs, bsize);
            update_reference(&mut b, &xs, &coeffs, bsize);
            assert_eq!(a, b, "w = {w}, bsize = {bsize}");
        }
    }
}
