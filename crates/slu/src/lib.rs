//! `slu` — a from-scratch sequential sparse LU solver.
//!
//! This crate is the workspace's substitute for SuperLU_DIST. It provides
//! everything PDSLin needs from a subdomain direct solver:
//!
//! * elimination trees, postorders and fill paths ([`etree`]);
//! * Gilbert–Peierls left-looking LU with threshold partial pivoting
//!   ([`lu`]);
//! * sparse triangular solves with **sparse right-hand sides** via
//!   symbolic reach (Gilbert's fill-path theorem) ([`trisolve`]);
//! * blocked multi-RHS triangular solves with zero padding and
//!   padded-zero accounting — the §IV kernel of the paper ([`blocked`]).
//!
//! # Example
//!
//! ```
//! use slu::{LuConfig, LuFactors};
//! use sparsekit::{Coo, Perm};
//!
//! let mut coo = Coo::new(3, 3);
//! for i in 0..3 { coo.push(i, i, 2.0); }
//! coo.push_sym(0, 1, -1.0);
//! coo.push_sym(1, 2, -1.0);
//! let a = coo.to_csr();
//! let lu = LuFactors::factorize(&a, &Perm::identity(3), &LuConfig::default()).unwrap();
//! let x = lu.solve(&[1.0, 0.0, 1.0]);
//! let r = sparsekit::ops::residual_inf_norm(&a, &x, &[1.0, 0.0, 1.0]);
//! assert!(r < 1e-12);
//! ```

pub mod blocked;
pub mod etree;
pub mod hbmc;
pub mod levels;
pub mod lu;
pub mod microkernel;
pub mod refine;
pub mod supernodes;
pub mod trisolve;

pub use blocked::{
    blocked_lower_solve, solve_in_blocks, solve_in_blocks_ordered, BlockSolveStats, BlockWorkspace,
};
pub use etree::{etree, first_nonzero_postorder_key, postorder};
pub use hbmc::{ScheduleError, TrisolveSchedule, HBMC_BLOCK, HBMC_EQUIV_TOL};
pub use levels::{plan_build_count, LevelPlan, SolvePlan, TriScratch};
pub use lu::{LuConfig, LuError, LuFactors, RefactorizeError};
pub use refine::{condest_1, solve_refined, RefinedSolve};
pub use supernodes::{
    detect_supernodes, supernodal_blocked_solve, supernodal_blocked_solve_precomputed,
    supernodal_blocked_solve_reference, SupernodePlan, Supernodes,
};
pub use trisolve::{solution_pattern, sparse_lower_solve, SparseVec};
