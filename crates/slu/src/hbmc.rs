//! Hierarchical block multi-color (HBMC) trisolve scheduling.
//!
//! Level scheduling (the default, [`crate::levels`]) groups rows by
//! longest dependency chain. That is optimal in sweep count over *rows*,
//! but on narrow-level factors it leaves little parallelism per barrier.
//! Iwashita et al.'s hierarchical block multi-color ordering trades
//! exactness for parallelism: rows are grouped into contiguous *blocks*
//! (the hierarchy level — a block stays on one core and is solved
//! sequentially, preserving cache locality), and the block quotient DAG
//! is colored by longest chain into *stages*. All blocks of a stage run
//! concurrently, so the sweep count drops from row-chain length to
//! block-chain length — fewer, wider barriers.
//!
//! The price: each row's dependency list is re-sorted into execution
//! order (earlier stages first), which **reorders the floating-point
//! sums** relative to the level schedule's fixed column order. HBMC is
//! therefore opt-in ([`TrisolveSchedule::Hbmc`]) and gated behind a
//! relative-tolerance equivalence probe
//! ([`crate::LuFactors::set_schedule`]): if a probe solve through the
//! HBMC plan deviates from the level-scheduled solve by more than the
//! tolerance, the schedule is rejected with a typed [`ScheduleError`]
//! and the factors keep their level plan. Given its fixed dependency
//! lists, an accepted HBMC plan is still byte-identical across worker
//! counts — worker splits land on block boundaries.

use crate::levels::{LevelPlan, SolvePlan};

/// Which execution schedule the triangular-solve plan uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TrisolveSchedule {
    /// Level scheduling: byte-identical to the serial sweep, the
    /// default.
    #[default]
    Level,
    /// Hierarchical block multi-color: fewer and wider sweeps, float
    /// sums reordered, tolerance-gated.
    Hbmc,
}

impl TrisolveSchedule {
    /// Stable lowercase label (CLI flag values, service requests, cache
    /// keys).
    pub fn label(&self) -> &'static str {
        match self {
            TrisolveSchedule::Level => "level",
            TrisolveSchedule::Hbmc => "hbmc",
        }
    }

    /// Parses a [`TrisolveSchedule::label`] value.
    pub fn parse(s: &str) -> Option<TrisolveSchedule> {
        match s {
            "level" => Some(TrisolveSchedule::Level),
            "hbmc" => Some(TrisolveSchedule::Hbmc),
            _ => None,
        }
    }
}

/// Rows per HBMC block. Small enough that block chains compress row
/// chains on mesh-like factors, large enough that a block amortizes its
/// scheduling overhead; see docs/kernels.md for the trade-off.
pub const HBMC_BLOCK: usize = 8;

/// Default relative tolerance of the HBMC equivalence probe.
pub const HBMC_EQUIV_TOL: f64 = 1e-8;

/// The HBMC equivalence probe failed: a probe solve through the
/// reordered plan deviated from the level-scheduled solve by more than
/// the tolerance. The factorisation keeps its level plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleError {
    /// Measured relative deviation (∞-norm) of the probe solve.
    pub rel_err: f64,
    /// The tolerance it exceeded.
    pub tol: f64,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hbmc schedule rejected: probe deviation {:.3e} exceeds tolerance {:.3e}",
            self.rel_err, self.tol
        )
    }
}

impl std::error::Error for ScheduleError {}

impl SolvePlan {
    /// Reschedules both sweeps with HBMC blocks of `block` rows.
    ///
    /// The result computes the same triangular solves up to
    /// floating-point reassociation of each row's dependency sum;
    /// callers gate it behind the equivalence probe
    /// ([`crate::LuFactors::set_schedule`]).
    pub fn to_hbmc(&self, block: usize) -> SolvePlan {
        let fwd = transform_sweep(&self.fwd, block, false);
        let mut bwd = transform_sweep(&self.bwd, block, true);
        // The backward sweep's input is the forward sweep's output in
        // *position* order; re-point the seeds at the new forward
        // positions.
        for p in 0..bwd.rhs_src.len() {
            bwd.rhs_src[p] = fwd.pos[bwd.order[p]];
        }
        let out_dst = bwd
            .order
            .iter()
            .map(|&j| self.out_dst[self.bwd.pos[j]])
            .collect();
        SolvePlan { fwd, bwd, out_dst }
    }
}

/// Reschedules one level-ordered sweep into HBMC stage order.
///
/// Blocks are contiguous `block`-row ranges of the sweep's row space;
/// the block quotient DAG is staged by longest chain (a valid greedy
/// multi-coloring of that DAG: same-stage blocks are independent by
/// construction). Positions are laid out stage by stage, blocks in
/// sweep order within a stage, rows in sweep order within a block, and
/// each row's dependency list is re-sorted into execution-position
/// order — the floating-point reordering the tolerance gate exists for.
fn transform_sweep(plan: &LevelPlan, block: usize, descending: bool) -> LevelPlan {
    assert!(block >= 1);
    let n = plan.rhs_src.len();
    let nblocks = n.div_ceil(block);
    let blk_of = |r: usize| r / block;
    // --- Stage = longest chain over the block quotient DAG. ---
    // Sweep order over blocks is topological: forward dependencies point
    // to smaller rows, backward to larger.
    let mut stage = vec![0usize; nblocks];
    let block_ids: Vec<usize> = if descending {
        (0..nblocks).rev().collect()
    } else {
        (0..nblocks).collect()
    };
    for &b in &block_ids {
        let mut s = 0usize;
        for r in b * block..((b + 1) * block).min(n) {
            let p = plan.pos[r];
            for k in plan.dep_ptr[p]..plan.dep_ptr[p + 1] {
                let db = blk_of(plan.order[plan.dep_pos[k]]);
                if db != b {
                    s = s.max(stage[db] + 1);
                }
            }
        }
        stage[b] = s;
    }
    let nstages = stage.iter().map(|&s| s + 1).max().unwrap_or(0);
    // --- Lay out positions: stage → block (sweep order) → row. ---
    let mut blocks_sorted = block_ids;
    blocks_sorted.sort_by_key(|&b| stage[b]); // stable: keeps sweep order per stage
    let mut level_ptr = vec![0usize; nstages + 1];
    let mut level_task = vec![0usize; nstages + 1];
    let mut task_ptr = Vec::with_capacity(nblocks + 1);
    task_ptr.push(0usize);
    let mut order = Vec::with_capacity(n);
    for &b in &blocks_sorted {
        let (r0, r1) = (b * block, ((b + 1) * block).min(n));
        if descending {
            order.extend((r0..r1).rev());
        } else {
            order.extend(r0..r1);
        }
        task_ptr.push(order.len());
        // Blocks arrive grouped by stage, so the last block of each
        // stage leaves the boundary behind (every stage is nonempty).
        level_ptr[stage[b] + 1] = order.len();
        level_task[stage[b] + 1] = task_ptr.len() - 1;
    }
    let mut pos = vec![0usize; n];
    for (p, &r) in order.iter().enumerate() {
        pos[r] = p;
    }
    // --- Remap dependencies, sorted into execution-position order. ---
    let mut dep_ptr = vec![0usize; n + 1];
    for p in 0..n {
        let po = plan.pos[order[p]];
        dep_ptr[p + 1] = dep_ptr[p] + (plan.dep_ptr[po + 1] - plan.dep_ptr[po]);
    }
    let mut dep_pos = vec![0usize; dep_ptr[n]];
    let mut dep_val = vec![0f64; dep_ptr[n]];
    let mut pairs: Vec<(usize, f64)> = Vec::new();
    for p in 0..n {
        let po = plan.pos[order[p]];
        pairs.clear();
        for k in plan.dep_ptr[po]..plan.dep_ptr[po + 1] {
            pairs.push((pos[plan.order[plan.dep_pos[k]]], plan.dep_val[k]));
        }
        pairs.sort_unstable_by_key(|&(dp, _)| dp);
        for (d, &(dp, dv)) in (dep_ptr[p]..dep_ptr[p + 1]).zip(&pairs) {
            dep_pos[d] = dp;
            dep_val[d] = dv;
        }
    }
    let rhs_src = order.iter().map(|&r| plan.rhs_src[plan.pos[r]]).collect();
    let diag = if plan.diag.is_empty() {
        Vec::new()
    } else {
        order.iter().map(|&r| plan.diag[plan.pos[r]]).collect()
    };
    LevelPlan {
        level_ptr,
        rhs_src,
        dep_ptr,
        dep_pos,
        dep_val,
        diag,
        order,
        pos,
        tasks: Some((task_ptr, level_task)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{LuConfig, LuFactors};
    use crate::TriScratch;
    use sparsekit::{Coo, Csr, Perm};

    fn laplace2d(nx: usize) -> Csr {
        let idx = |i: usize, j: usize| i * nx + j;
        let mut c = Coo::new(nx * nx, nx * nx);
        for i in 0..nx {
            for j in 0..nx {
                c.push(idx(i, j), idx(i, j), 4.0);
                if i + 1 < nx {
                    c.push_sym(idx(i, j), idx(i + 1, j), -1.0);
                }
                if j + 1 < nx {
                    c.push_sym(idx(i, j), idx(i, j + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    fn factor(nx: usize) -> LuFactors {
        let a = laplace2d(nx);
        let n = a.nrows();
        LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap()
    }

    #[test]
    fn hbmc_plan_is_topologically_valid() {
        let f = factor(8);
        let plan = f.solve_plan().to_hbmc(HBMC_BLOCK);
        for sweep in [&plan.fwd, &plan.bwd] {
            let n = sweep.rhs_src.len();
            let (task_ptr, level_task) = sweep.tasks.as_ref().expect("hbmc plan carries tasks");
            assert_eq!(*task_ptr.last().unwrap(), n);
            assert_eq!(*level_task.last().unwrap(), task_ptr.len() - 1);
            // Task id per position.
            let mut task_of = vec![0usize; n];
            for t in 0..task_ptr.len() - 1 {
                for p in task_ptr[t]..task_ptr[t + 1] {
                    task_of[p] = t;
                }
            }
            let mut level_of = vec![0usize; n];
            for l in 0..sweep.level_ptr.len() - 1 {
                for p in sweep.level_ptr[l]..sweep.level_ptr[l + 1] {
                    level_of[p] = l;
                }
            }
            for p in 0..n {
                for k in sweep.dep_ptr[p]..sweep.dep_ptr[p + 1] {
                    let dp = sweep.dep_pos[k];
                    assert!(dp < p, "dependency not resolved before use");
                    assert!(
                        level_of[dp] < level_of[p] || task_of[dp] == task_of[p],
                        "same-stage dependency must stay inside one task"
                    );
                    if k > sweep.dep_ptr[p] {
                        assert!(sweep.dep_pos[k - 1] < dp, "dep list sorted by position");
                    }
                }
            }
        }
    }

    #[test]
    fn hbmc_has_fewer_sweeps_and_wider_levels_on_laplacian() {
        let f = factor(16);
        let level = f.solve_plan();
        let hbmc = level.to_hbmc(HBMC_BLOCK);
        let (ls, lw) = level.forward_levels();
        let (hs, hw) = hbmc.forward_levels();
        assert!(hs < ls, "sweeps: hbmc {hs} vs level {ls}");
        assert!(hw > lw, "width: hbmc {hw} vs level {lw}");
    }

    #[test]
    fn hbmc_parallel_matches_hbmc_serial_bitwise() {
        let a = laplace2d(20); // 400 rows — exercises the threaded path
        let n = a.nrows();
        let mut f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        f.set_schedule(TrisolveSchedule::Hbmc)
            .expect("probe passes");
        let b: Vec<f64> = (0..n).map(|i| ((i * 29 % 13) as f64) - 6.0).collect();
        let mut scratch = TriScratch::new();
        let mut serial = vec![0.0; n];
        f.solve_into(&b, &mut serial, &mut scratch, 1);
        for w in [2usize, 3, 4, 7] {
            let mut par = vec![f64::NAN; n];
            f.solve_into(&b, &mut par, &mut scratch, w);
            assert_eq!(par, serial, "workers {w}");
        }
    }

    #[test]
    fn hbmc_solution_close_to_level_solution() {
        let a = laplace2d(12);
        let n = a.nrows();
        let mut f = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let level_x = f.solve(&b);
        f.set_schedule(TrisolveSchedule::Hbmc)
            .expect("probe passes");
        assert_eq!(f.schedule(), TrisolveSchedule::Hbmc);
        let hbmc_x = f.solve(&b);
        let denom = level_x.iter().fold(0f64, |m, v| m.max(v.abs()));
        let err = level_x
            .iter()
            .zip(&hbmc_x)
            .fold(0f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(err / denom < 1e-10, "rel err {}", err / denom);
        // And back to the byte-identical level schedule.
        f.set_schedule(TrisolveSchedule::Level).unwrap();
        assert_eq!(f.solve(&b), level_x);
    }

    #[test]
    fn impossible_tolerance_yields_typed_rejection() {
        let mut f = factor(10);
        let err = f
            .set_schedule_with_tol(TrisolveSchedule::Hbmc, -1.0)
            .expect_err("negative tolerance rejects every deviation");
        assert!(err.rel_err >= 0.0 && err.tol == -1.0);
        assert_eq!(f.schedule(), TrisolveSchedule::Level, "plan unchanged");
        let msg = err.to_string();
        assert!(msg.contains("hbmc schedule rejected"), "{msg}");
    }
}
