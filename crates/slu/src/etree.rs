//! Elimination trees and postorders (Liu's algorithms).
//!
//! The e-tree of a symmetric matrix encodes column dependencies of its
//! factorisation and — via Gilbert's fill-path theorem — where fill
//! appears when solving `D⁻¹b` with a sparse `b`: if `b(i) ≠ 0`, fill
//! occurs on the path from node `i` to the root (§IV-A of the paper).

use sparsekit::{Csr, Perm};

/// Marker for tree roots in a parent array.
pub const NO_PARENT: usize = usize::MAX;

/// Computes the elimination tree of a matrix with symmetric pattern
/// (pass `|D| + |Dᵀ|` for unsymmetric `D`, as the paper does).
///
/// Returns `parent[v]` with [`NO_PARENT`] at roots. Uses Liu's ancestor
/// path-compression algorithm, `O(nnz · α)`.
pub fn etree(a: &Csr) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "etree requires a square matrix");
    let n = a.nrows();
    let mut parent = vec![NO_PARENT; n];
    let mut ancestor = vec![NO_PARENT; n];
    for i in 0..n {
        for &k in a.row_indices(i) {
            if k >= i {
                break; // only the lower triangle drives the recurrence
            }
            // Traverse from k to the root of its current subtree,
            // compressing the ancestor path.
            let mut j = k;
            while ancestor[j] != NO_PARENT && ancestor[j] != i {
                let next = ancestor[j];
                ancestor[j] = i;
                j = next;
            }
            if ancestor[j] == NO_PARENT {
                ancestor[j] = i;
                parent[j] = i;
            }
        }
    }
    parent
}

/// Computes a postorder of a forest given by `parent`.
///
/// Children are visited in ascending order, iteratively (no recursion, so
/// deep chains are fine). Returns a [`Perm`] whose `to_old(p)` is the
/// vertex at postorder position `p`.
pub fn postorder(parent: &[usize]) -> Perm {
    let n = parent.len();
    // Build child lists.
    let mut head = vec![usize::MAX; n];
    let mut next = vec![usize::MAX; n];
    // Insert children in reverse so lists come out ascending.
    for v in (0..n).rev() {
        let p = parent[v];
        if p != NO_PARENT {
            next[v] = head[p];
            head[p] = v;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut stack: Vec<(usize, bool)> = Vec::new();
    for root in (0..n).rev() {
        if parent[root] == NO_PARENT {
            stack.push((root, false));
        }
    }
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            order.push(v);
            continue;
        }
        stack.push((v, true));
        // Push children (they pop in ascending order because the list is
        // ascending and the stack reverses it — push in reverse).
        let mut kids = Vec::new();
        let mut c = head[v];
        while c != usize::MAX {
            kids.push(c);
            c = next[c];
        }
        for &k in kids.iter().rev() {
            stack.push((k, false));
        }
    }
    debug_assert_eq!(order.len(), n);
    Perm::from_to_old(order)
}

/// Sort key for the §IV-A right-hand-side ordering: the postorder
/// position of the first (smallest-position) nonzero of a sparse column.
///
/// `rows` is the nonzero row pattern of the column; `post` the subdomain
/// postorder. Empty columns sort last.
pub fn first_nonzero_postorder_key(rows: &[usize], post: &Perm) -> usize {
    rows.iter()
        .map(|&r| post.to_new(r))
        .min()
        .unwrap_or(usize::MAX)
}

/// The fill path from node `v` to its root (inclusive): the positions
/// where fill appears when solving `D⁻¹b` with `b(v) ≠ 0` (§IV-A of the
/// paper, after Gilbert's theorem).
pub fn path_to_root(parent: &[usize], v: usize) -> Vec<usize> {
    let mut path = vec![v];
    let mut cur = v;
    while parent[cur] != NO_PARENT {
        cur = parent[cur];
        path.push(cur);
    }
    path
}

/// Depth of each node in the forest (roots have depth 0).
pub fn depths(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut depth = vec![usize::MAX; n];
    for start in 0..n {
        let mut path = Vec::new();
        let mut v = start;
        while depth[v] == usize::MAX && parent[v] != NO_PARENT {
            path.push(v);
            v = parent[v];
        }
        if depth[v] == usize::MAX {
            depth[v] = 0; // fresh root
        }
        let base = depth[v];
        for (i, &u) in path.iter().rev().enumerate() {
            depth[u] = base + i + 1;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Coo;

    /// Tridiagonal matrix: the e-tree is a path 0 → 1 → … → n−1.
    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push_sym(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = tridiag(6);
        let p = etree(&a);
        assert_eq!(p, vec![1, 2, 3, 4, 5, NO_PARENT]);
    }

    #[test]
    fn etree_of_diagonal_is_a_forest_of_roots() {
        let a = Csr::identity(4);
        let p = etree(&a);
        assert!(p.iter().all(|&x| x == NO_PARENT));
    }

    #[test]
    fn etree_arrow_matrix() {
        // Arrow pointing to the last row/col: every node's parent is n-1
        // …but through the chain: parent[i] = n-1 directly for i < n-1.
        let n = 5;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push_sym(i, n - 1, 1.0);
            }
        }
        let a = c.to_csr();
        let p = etree(&a);
        for i in 0..n - 1 {
            assert_eq!(p[i], n - 1);
        }
        assert_eq!(p[n - 1], NO_PARENT);
    }

    #[test]
    fn postorder_is_bottom_up() {
        let a = tridiag(5);
        let parent = etree(&a);
        let post = postorder(&parent);
        // In a postorder every child precedes its parent.
        for v in 0..5 {
            if parent[v] != NO_PARENT {
                assert!(post.to_new(v) < post.to_new(parent[v]));
            }
        }
    }

    #[test]
    fn postorder_of_balanced_tree() {
        // parent array: 0,1 -> 2; 3,4 -> 5; 2,5 -> 6
        let parent = vec![2, 2, 6, 5, 5, 6, NO_PARENT];
        let post = postorder(&parent);
        for v in 0..7 {
            if parent[v] != NO_PARENT {
                assert!(post.to_new(v) < post.to_new(parent[v]));
            }
        }
        // Root is last.
        assert_eq!(post.to_old(6), 6);
    }

    #[test]
    fn postorder_handles_forest() {
        let parent = vec![NO_PARENT, 0, NO_PARENT, 2];
        let post = postorder(&parent);
        assert_eq!(post.len(), 4);
        assert!(post.to_new(1) < post.to_new(0));
        assert!(post.to_new(3) < post.to_new(2));
    }

    #[test]
    fn first_nonzero_key_picks_min_postorder() {
        let parent = vec![1, 2, NO_PARENT];
        let post = postorder(&parent); // identity here
        assert_eq!(first_nonzero_postorder_key(&[2, 0], &post), 0);
        assert_eq!(first_nonzero_postorder_key(&[], &post), usize::MAX);
    }

    #[test]
    fn path_to_root_on_chain() {
        let parent = vec![1, 2, NO_PARENT, NO_PARENT];
        assert_eq!(path_to_root(&parent, 0), vec![0, 1, 2]);
        assert_eq!(path_to_root(&parent, 3), vec![3]);
    }

    #[test]
    fn depths_of_path() {
        let parent = vec![1, 2, NO_PARENT];
        assert_eq!(depths(&parent), vec![2, 1, 0]);
    }
}
