//! Blocked sparse triangular solution with multiple sparse right-hand
//! sides — the §IV kernel of the paper.
//!
//! PDSLin partitions the columns of `Ê` into blocks of `B` columns and
//! solves each block *simultaneously*: the block's columns share one
//! symbolic pattern (the union of their reaches), the `L`-factor is
//! walked once per block, and the inner update loops run over dense
//! `B`-wide panels. The price is **padded zeros**: positions present in
//! the union pattern but absent from an individual column's true
//! pattern. The reordering strategies of §IV exist precisely to shrink
//! that padding.
//!
//! Blocks are mutually independent (each has its own union reach), so
//! [`solve_in_blocks_ordered`] can solve them concurrently: workers pull
//! block indices from a shared counter, each with its own pooled
//! [`BlockWorkspace`] (no per-block allocation), and results are merged
//! in block order so the output is byte-identical to the serial path.

use crate::trisolve::{compute_reach, SolveWorkspace, SparseVec};
use sparsekit::budget::{Budget, BudgetInterrupt};
use sparsekit::Csc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Accounting for one blocked solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockSolveStats {
    /// Rows in the union pattern of the block.
    pub union_rows: usize,
    /// Total *structural* nonzeros over the block's true column patterns.
    pub true_nnz: u64,
    /// Padded zeros: `union_rows · B − true_nnz`.
    pub padded_zeros: u64,
    /// Floating-point operations performed by the numeric phase.
    pub flops: u64,
}

impl BlockSolveStats {
    /// Fraction of the dense panel that is padding.
    pub fn padding_fraction(&self) -> f64 {
        let total = self.true_nnz + self.padded_zeros;
        if total == 0 {
            0.0
        } else {
            self.padded_zeros as f64 / total as f64
        }
    }

    /// Accumulates another block's statistics.
    pub fn merge(&mut self, other: &BlockSolveStats) {
        self.union_rows += other.union_rows;
        self.true_nnz += other.true_nnz;
        self.padded_zeros += other.padded_zeros;
        self.flops += other.flops;
    }
}

/// Pooled scratch for repeated blocked solves on one `n×n` factor: the
/// symbolic workspace, the O(n) scatter map, and the reusable seed /
/// pattern / panel buffers. One of these per worker is the entire
/// steady-state memory traffic of the blocked solver — solving a block
/// allocates nothing beyond its output columns.
#[derive(Clone, Debug)]
pub struct BlockWorkspace {
    solve: SolveWorkspace,
    /// Matrix row → panel row for the current block; `usize::MAX`
    /// everywhere between blocks (reset by walking the union pattern,
    /// O(union) not O(n)).
    pos: Vec<usize>,
    seeds: Vec<usize>,
    pattern: Vec<usize>,
    panel: Vec<f64>,
}

impl BlockWorkspace {
    /// Workspace for blocked solves on an order-`n` factor.
    pub fn new(n: usize) -> Self {
        BlockWorkspace {
            solve: SolveWorkspace::new(n),
            pos: vec![usize::MAX; n],
            seeds: Vec::new(),
            pattern: Vec::new(),
            panel: Vec::new(),
        }
    }

    /// Union pattern of the most recent block, topological order.
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    /// Dense row-major `union_rows × B` panel of the most recent block.
    pub fn panel(&self) -> &[f64] {
        &self.panel
    }
}

/// One block of a [`BlockedSolvePlan`]: which columns it solves and the
/// symbolic state `solve_block` would otherwise recompute per call.
#[derive(Clone, Debug)]
struct PlannedBlock {
    /// Indices into `cols` (one `block_size` chunk of the caller's
    /// column order).
    cols: Vec<usize>,
    /// Union reach of the block's columns, topological order.
    pattern: Vec<usize>,
    /// Total structural nonzeros over the true per-column patterns
    /// (padding accounting).
    true_nnz: u64,
}

/// Value-independent symbolic schedule of one blocked solve: the block
/// decomposition of the column order plus each block's union reach and
/// padding accounting. The reach DFS dominates the blocked solve on
/// grid problems (the numeric panel substitution is a fraction of it),
/// and it depends only on the *patterns* of `L` and the right-hand
/// sides — so a sequence of solves against factors refreshed by pivot
/// replay (identical pattern, new values) can build the plan once and
/// replay numerics via [`solve_in_blocks_planned`].
#[derive(Clone, Debug)]
pub struct BlockedSolvePlan {
    ncols: usize,
    blocks: Vec<PlannedBlock>,
}

impl BlockedSolvePlan {
    /// Runs the symbolic half of [`solve_in_blocks_ordered`] — per-column
    /// reaches for padding accounting and the per-block union reach —
    /// and captures the result. Valid for any later solve against a
    /// factor with the same pattern and right-hand sides with the same
    /// patterns in the same order.
    pub fn build(l: &Csc, cols: &[SparseVec], order: &[usize], block_size: usize) -> Self {
        assert!(block_size > 0);
        let mut ws = BlockWorkspace::new(l.nrows());
        let blocks = order
            .chunks(block_size)
            .map(|chunk| {
                let mut true_nnz = 0u64;
                ws.seeds.clear();
                for &ci in chunk {
                    let c = &cols[ci];
                    compute_reach(l, &c.indices, &mut ws.solve);
                    true_nnz += ws.solve.topo().len() as u64;
                    ws.seeds.extend_from_slice(&c.indices);
                }
                ws.seeds.sort_unstable();
                ws.seeds.dedup();
                compute_reach(l, &ws.seeds, &mut ws.solve);
                PlannedBlock {
                    cols: chunk.to_vec(),
                    pattern: ws.solve.topo().to_vec(),
                    true_nnz,
                }
            })
            .collect();
        BlockedSolvePlan {
            ncols: order.len(),
            blocks,
        }
    }

    /// Number of columns the plan solves.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Heap bytes held by the cached patterns (capacity accounting).
    pub fn memory_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| (b.cols.capacity() + b.pattern.capacity()) * std::mem::size_of::<usize>())
            .sum()
    }
}

/// Numeric panel substitution over an already-known union pattern
/// (`ws.pattern`), shared by the ad-hoc and planned paths. Expects
/// `ws.pos` to be all-MAX and restores it before returning.
fn numeric_on_pattern(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    block: &[usize],
    ws: &mut BlockWorkspace,
) -> u64 {
    let bsize = block.len();
    let union_rows = ws.pattern.len();
    // Scatter map: matrix row -> panel row.
    for (t, &row) in ws.pattern.iter().enumerate() {
        ws.pos[row] = t;
    }
    ws.panel.clear();
    ws.panel.resize(union_rows * bsize, 0.0);
    for (c, &ci) in block.iter().enumerate() {
        let col = &cols[ci];
        for (&i, &v) in col.indices.iter().zip(&col.values) {
            ws.panel[ws.pos[i] * bsize + c] = v;
        }
    }
    // Forward substitution over the union pattern, all columns at once.
    let mut flops = 0u64;
    for t in 0..union_rows {
        let j = ws.pattern[t];
        if !unit_diag {
            let cix = l.col_indices(j);
            let d = cix.binary_search(&j).expect("missing diagonal");
            let dv = l.col_values(j)[d];
            sparsekit::lanes::scale_div(&mut ws.panel[t * bsize..(t + 1) * bsize], dv);
            flops += bsize as u64;
        }
        let (head, tail) = ws.panel.split_at_mut((t + 1) * bsize);
        let xrow = &head[t * bsize..];
        for (r, v) in l.col_iter(j) {
            if r <= j {
                continue;
            }
            let pr = ws.pos[r];
            debug_assert!(pr != usize::MAX && pr > t, "union pattern must be closed");
            // Lane-vectorized panel update, bit-identical to the scalar
            // per-entry loop (independent destinations).
            sparsekit::lanes::axpy_neg(&mut tail[(pr - t - 1) * bsize..(pr - t) * bsize], xrow, v);
            flops += 2 * bsize as u64;
        }
    }
    // Leave `pos` all-MAX for the next block (O(union), not O(n)).
    for &row in &ws.pattern {
        ws.pos[row] = usize::MAX;
    }
    flops
}

/// Solves one block of columns (`block` lists indices into `cols`),
/// leaving the union pattern and dense panel in the workspace.
fn solve_block(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    block: &[usize],
    ws: &mut BlockWorkspace,
) -> BlockSolveStats {
    let bsize = block.len();
    ws.pattern.clear();
    ws.panel.clear();
    if bsize == 0 {
        return BlockSolveStats::default();
    }
    // Per-column true patterns (for padding accounting) and the union.
    let mut true_nnz = 0u64;
    ws.seeds.clear();
    for &ci in block {
        let c = &cols[ci];
        compute_reach(l, &c.indices, &mut ws.solve);
        true_nnz += ws.solve.topo().len() as u64;
        ws.seeds.extend_from_slice(&c.indices);
    }
    ws.seeds.sort_unstable();
    ws.seeds.dedup();
    compute_reach(l, &ws.seeds, &mut ws.solve);
    ws.pattern.extend_from_slice(ws.solve.topo());
    let union_rows = ws.pattern.len();
    let flops = numeric_on_pattern(l, unit_diag, cols, block, ws);
    let padded_zeros = (union_rows * bsize) as u64 - true_nnz;
    BlockSolveStats {
        union_rows,
        true_nnz,
        padded_zeros,
        flops,
    }
}

/// [`solve_block`] with the symbolic half served from a plan: copies the
/// cached union pattern into the workspace and runs numerics only.
fn solve_block_planned(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    pb: &PlannedBlock,
    ws: &mut BlockWorkspace,
) -> BlockSolveStats {
    let bsize = pb.cols.len();
    ws.pattern.clear();
    ws.panel.clear();
    if bsize == 0 {
        return BlockSolveStats::default();
    }
    ws.pattern.extend_from_slice(&pb.pattern);
    let union_rows = ws.pattern.len();
    let flops = numeric_on_pattern(l, unit_diag, cols, &pb.cols, ws);
    let padded_zeros = (union_rows * bsize) as u64 - pb.true_nnz;
    BlockSolveStats {
        union_rows,
        true_nnz: pb.true_nnz,
        padded_zeros,
        flops,
    }
}

/// Copies the workspace's panel out as one [`SparseVec`] per column (on
/// the block-union pattern, padded zeros stored explicitly).
fn extract_columns(ws: &BlockWorkspace, bsize: usize, out: &mut Vec<SparseVec>) {
    for c in 0..bsize {
        let mut v = SparseVec::default();
        v.indices.reserve(ws.pattern.len());
        v.values.reserve(ws.pattern.len());
        for (t, &row) in ws.pattern.iter().enumerate() {
            v.indices.push(row);
            v.values.push(ws.panel[t * bsize + c]);
        }
        out.push(v);
    }
}

/// Solves `T X = B` for a block of sparse right-hand-side columns, where
/// `T` is lower triangular in CSC.
///
/// Returns `(union_pattern, panel, stats)`: `union_pattern` lists the
/// union-reach rows in topological order, and `panel` is dense row-major
/// `union_rows × ncols` holding every column's solution on the union
/// pattern (padded zeros are real zeros in the panel).
pub fn blocked_lower_solve(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    ws: &mut BlockWorkspace,
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    let block: Vec<usize> = (0..cols.len()).collect();
    let stats = solve_block(l, unit_diag, cols, &block, ws);
    (ws.pattern.clone(), ws.panel.clone(), stats)
}

/// Solves all columns in blocks of `block_size`, returning the solution
/// columns (on their block-union patterns) and merged statistics.
pub fn solve_in_blocks(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    block_size: usize,
) -> (Vec<SparseVec>, BlockSolveStats) {
    let order: Vec<usize> = (0..cols.len()).collect();
    solve_in_blocks_ordered(
        l,
        unit_diag,
        cols,
        &order,
        block_size,
        1,
        &Budget::unlimited(),
    )
    .expect("unlimited budget never interrupts")
}

/// Blocked solve through an index permutation, optionally in parallel.
///
/// Position `p` of the output holds the solution of `cols[order[p]]` —
/// the caller applies a column ordering *by index* instead of cloning
/// columns into permuted order. Blocks are `block_size`-wide chunks of
/// `order`, solved concurrently by up to `workers` threads pulling block
/// indices from a shared counter; each worker owns one pooled
/// [`BlockWorkspace`], so the steady state performs **zero per-block
/// heap allocation** beyond the output columns themselves.
///
/// Results are merged in block order, making the output byte-identical
/// to the serial path. The budget is polled once per block; the first
/// interrupt (lowest block index) wins, and remaining workers stop
/// claiming blocks cooperatively.
pub fn solve_in_blocks_ordered(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    order: &[usize],
    block_size: usize,
    workers: usize,
    budget: &Budget,
) -> Result<(Vec<SparseVec>, BlockSolveStats), BudgetInterrupt> {
    assert!(block_size > 0);
    let blocks: Vec<&[usize]> = order.chunks(block_size).collect();
    run_blocks(
        l.nrows(),
        order.len(),
        blocks.len(),
        workers,
        budget,
        |b, ws| {
            (
                solve_block(l, unit_diag, cols, blocks[b], ws),
                blocks[b].len(),
            )
        },
    )
}

/// [`solve_in_blocks_ordered`] with the symbolic phase served from a
/// [`BlockedSolvePlan`]: no reach DFS runs, only the numeric panel
/// substitution. Byte-identical to the ad-hoc path for any worker count
/// when the plan was built against a factor with the same pattern and
/// the same column patterns/order.
pub fn solve_in_blocks_planned(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    plan: &BlockedSolvePlan,
    workers: usize,
    budget: &Budget,
) -> Result<(Vec<SparseVec>, BlockSolveStats), BudgetInterrupt> {
    run_blocks(
        l.nrows(),
        plan.ncols,
        plan.blocks.len(),
        workers,
        budget,
        |b, ws| {
            let pb = &plan.blocks[b];
            (
                solve_block_planned(l, unit_diag, cols, pb, ws),
                pb.cols.len(),
            )
        },
    )
}

/// Shared driver of the ad-hoc and planned blocked solves: serial loop
/// or worker pool over block indices, results merged in block order so
/// the output is byte-identical to the serial path.
fn run_blocks<F>(
    n: usize,
    ncols: usize,
    nblocks: usize,
    workers: usize,
    budget: &Budget,
    solve: F,
) -> Result<(Vec<SparseVec>, BlockSolveStats), BudgetInterrupt>
where
    F: Fn(usize, &mut BlockWorkspace) -> (BlockSolveStats, usize) + Sync,
{
    budget.check()?;
    let mut out = Vec::with_capacity(ncols);
    let mut stats = BlockSolveStats::default();
    if workers <= 1 || nblocks <= 1 {
        let mut ws = BlockWorkspace::new(n);
        for b in 0..nblocks {
            budget.check()?;
            let (st, bsize) = solve(b, &mut ws);
            stats.merge(&st);
            extract_columns(&ws, bsize, &mut out);
        }
        return Ok((out, stats));
    }

    type BlockResult = Result<(Vec<SparseVec>, BlockSolveStats), BudgetInterrupt>;
    let nworkers = workers.min(nblocks);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let solve = &solve;
    let per_worker: Vec<Vec<(usize, BlockResult)>> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..nworkers)
            .map(|_| {
                let (next, abort) = (&next, &abort);
                sc.spawn(move || {
                    let mut ws = BlockWorkspace::new(n);
                    let mut got: Vec<(usize, BlockResult)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= nblocks || abort.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Err(e) = budget.check() {
                            abort.store(true, Ordering::Relaxed);
                            got.push((b, Err(e)));
                            break;
                        }
                        let (st, bsize) = solve(b, &mut ws);
                        let mut sols = Vec::with_capacity(bsize);
                        extract_columns(&ws, bsize, &mut sols);
                        got.push((b, Ok((sols, st))));
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });

    let mut slots: Vec<Option<BlockResult>> = (0..nblocks).map(|_| None).collect();
    for (b, r) in per_worker.into_iter().flatten() {
        slots[b] = Some(r);
    }
    // First interrupt in block order wins (deterministic error identity).
    if let Some(e) = slots.iter().find_map(|s| match s {
        Some(Err(e)) => Some(*e),
        _ => None,
    }) {
        return Err(e);
    }
    for slot in slots {
        let (sols, st) = slot
            .expect("every block is claimed when no worker aborts")
            .expect("errors were returned above");
        stats.merge(&st);
        out.extend(sols);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trisolve::sparse_lower_solve;
    use sparsekit::{CancelToken, Coo};

    fn bidiag_l(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
            if i + 1 < n {
                c.push(i + 1, i, -0.5);
            }
        }
        c.to_csr().to_csc()
    }

    #[test]
    fn blocked_solve_matches_column_solves() {
        let n = 12;
        let l = bidiag_l(n);
        let cols = vec![
            SparseVec::new(vec![2], vec![1.0]),
            SparseVec::new(vec![5], vec![-2.0]),
            SparseVec::new(vec![2, 7], vec![0.5, 3.0]),
        ];
        let mut ws = BlockWorkspace::new(n);
        let (pattern, panel, _stats) = blocked_lower_solve(&l, true, &cols, &mut ws);
        let b = cols.len();
        let mut sws = SolveWorkspace::new(n);
        for (c, col) in cols.iter().enumerate() {
            let x = sparse_lower_solve(&l, true, col, &mut sws);
            let mut dense = vec![0f64; n];
            for (&i, &v) in x.indices.iter().zip(&x.values) {
                dense[i] = v;
            }
            for (t, &row) in pattern.iter().enumerate() {
                assert!(
                    (panel[t * b + c] - dense[row]).abs() < 1e-13,
                    "mismatch col {c} row {row}"
                );
            }
        }
    }

    #[test]
    fn padding_counts_are_exact() {
        let n = 10;
        let l = bidiag_l(n);
        // Reaches: col0 = {2..10} (8 rows), col1 = {7..10} (3 rows).
        let cols = vec![
            SparseVec::new(vec![2], vec![1.0]),
            SparseVec::new(vec![7], vec![1.0]),
        ];
        let mut ws = BlockWorkspace::new(n);
        let (pattern, _panel, stats) = blocked_lower_solve(&l, true, &cols, &mut ws);
        assert_eq!(pattern.len(), 8); // union = {2..10}
        assert_eq!(stats.true_nnz, 8 + 3);
        assert_eq!(stats.padded_zeros, 8 * 2 - 11);
        assert!((stats.padding_fraction() - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn identical_patterns_have_zero_padding() {
        let l = bidiag_l(8);
        let cols = vec![
            SparseVec::new(vec![3], vec![1.0]),
            SparseVec::new(vec![3], vec![2.0]),
        ];
        let mut ws = BlockWorkspace::new(8);
        let (_p, _panel, stats) = blocked_lower_solve(&l, true, &cols, &mut ws);
        assert_eq!(stats.padded_zeros, 0);
    }

    #[test]
    fn workspace_is_reusable_across_blocks() {
        let l = bidiag_l(16);
        let mut ws = BlockWorkspace::new(16);
        let cols_a = vec![SparseVec::new(vec![1], vec![1.0])];
        let cols_b = vec![SparseVec::new(vec![9], vec![2.0])];
        let (pat_a, _, _) = blocked_lower_solve(&l, true, &cols_a, &mut ws);
        let (pat_b, panel_b, _) = blocked_lower_solve(&l, true, &cols_b, &mut ws);
        assert_eq!(pat_a.len(), 15);
        assert_eq!(pat_b.len(), 7); // stale scatter state would corrupt this
        assert!((panel_b[0] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn block_size_one_has_zero_padding() {
        let l = bidiag_l(16);
        let cols: Vec<SparseVec> = (0..6)
            .map(|i| SparseVec::new(vec![i * 2], vec![1.0]))
            .collect();
        let (_x, stats) = solve_in_blocks(&l, true, &cols, 1);
        assert_eq!(stats.padded_zeros, 0, "B=1 never pads (paper §V-B)");
    }

    #[test]
    fn bigger_blocks_pad_at_least_as_much() {
        let l = bidiag_l(32);
        let cols: Vec<SparseVec> = (0..8)
            .map(|i| SparseVec::new(vec![i * 4], vec![1.0]))
            .collect();
        let (_x1, s1) = solve_in_blocks(&l, true, &cols, 2);
        let (_x2, s2) = solve_in_blocks(&l, true, &cols, 4);
        let (_x3, s3) = solve_in_blocks(&l, true, &cols, 8);
        assert!(s1.padded_zeros <= s2.padded_zeros);
        assert!(s2.padded_zeros <= s3.padded_zeros);
    }

    #[test]
    fn solve_in_blocks_returns_all_columns() {
        let l = bidiag_l(10);
        let cols: Vec<SparseVec> = (0..5).map(|i| SparseVec::new(vec![i], vec![1.0])).collect();
        let (xs, _stats) = solve_in_blocks(&l, true, &cols, 2);
        assert_eq!(xs.len(), 5);
        // First value of each solution equals the seed value (unit diag).
        for (i, x) in xs.iter().enumerate() {
            let mut m = std::collections::HashMap::new();
            for (&r, &v) in x.indices.iter().zip(&x.values) {
                m.insert(r, v);
            }
            assert!((m[&i] - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn planned_solve_is_byte_identical_to_ordered() {
        let l = bidiag_l(40);
        let cols: Vec<SparseVec> = (0..12)
            .map(|i| SparseVec::new(vec![(i * 3) % 40], vec![1.0 + i as f64]))
            .collect();
        let order: Vec<usize> = (0..12).map(|p| (p * 5) % 12).collect();
        let budget = Budget::unlimited();
        let (adhoc, astats) =
            solve_in_blocks_ordered(&l, true, &cols, &order, 3, 1, &budget).unwrap();
        let plan = BlockedSolvePlan::build(&l, &cols, &order, 3);
        assert_eq!(plan.ncols(), 12);
        assert!(plan.memory_bytes() > 0);
        for w in [1usize, 4] {
            let (planned, pstats) =
                solve_in_blocks_planned(&l, true, &cols, &plan, w, &budget).unwrap();
            assert_eq!(pstats, astats, "workers {w}");
            assert_eq!(planned.len(), adhoc.len());
            for (p, (a, b)) in planned.iter().zip(&adhoc).enumerate() {
                assert_eq!(a.indices, b.indices, "pattern col {p} workers {w}");
                assert_eq!(a.values, b.values, "values col {p} workers {w}");
            }
        }
    }

    #[test]
    fn plan_survives_value_changes_on_a_fixed_pattern() {
        // Build the plan against one set of factor values, then solve
        // with different values on the same pattern — the sequence-solve
        // replay situation. The planned solve must match a fresh ad-hoc
        // solve against the new values exactly.
        let mut l = bidiag_l(24);
        let cols: Vec<SparseVec> = (0..6)
            .map(|i| SparseVec::new(vec![i * 4], vec![1.0 + i as f64]))
            .collect();
        let order: Vec<usize> = (0..6).collect();
        let plan = BlockedSolvePlan::build(&l, &cols, &order, 2);
        for v in l.values_mut() {
            *v *= 1.5;
        }
        let budget = Budget::unlimited();
        let (adhoc, astats) =
            solve_in_blocks_ordered(&l, true, &cols, &order, 2, 1, &budget).unwrap();
        let (planned, pstats) =
            solve_in_blocks_planned(&l, true, &cols, &plan, 1, &budget).unwrap();
        assert_eq!(pstats, astats);
        for (a, b) in planned.iter().zip(&adhoc) {
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn parallel_ordered_solve_is_byte_identical_to_serial() {
        let l = bidiag_l(40);
        let cols: Vec<SparseVec> = (0..12)
            .map(|i| SparseVec::new(vec![(i * 3) % 40], vec![1.0 + i as f64]))
            .collect();
        // A non-trivial permutation.
        let order: Vec<usize> = (0..12).map(|p| (p * 5) % 12).collect();
        let budget = Budget::unlimited();
        let (serial, sstats) =
            solve_in_blocks_ordered(&l, true, &cols, &order, 3, 1, &budget).unwrap();
        for w in [2usize, 4, 7] {
            let (par, pstats) =
                solve_in_blocks_ordered(&l, true, &cols, &order, 3, w, &budget).unwrap();
            assert_eq!(pstats, sstats, "stats merge associative, workers {w}");
            assert_eq!(par.len(), serial.len());
            for (p, (a, b)) in par.iter().zip(&serial).enumerate() {
                assert_eq!(a.indices, b.indices, "pattern col {p} workers {w}");
                assert_eq!(a.values, b.values, "values col {p} workers {w}");
            }
        }
    }

    #[test]
    fn cancelled_budget_interrupts_parallel_solve() {
        let l = bidiag_l(20);
        let cols: Vec<SparseVec> = (0..8).map(|i| SparseVec::new(vec![i], vec![1.0])).collect();
        let order: Vec<usize> = (0..8).collect();
        let tok = CancelToken::new();
        tok.cancel();
        let budget = Budget::unlimited().with_token(tok);
        for w in [1usize, 4] {
            let r = solve_in_blocks_ordered(&l, true, &cols, &order, 2, w, &budget);
            assert_eq!(r.unwrap_err(), BudgetInterrupt::Cancelled, "workers {w}");
        }
    }
}
