//! Blocked sparse triangular solution with multiple sparse right-hand
//! sides — the §IV kernel of the paper.
//!
//! PDSLin partitions the columns of `Ê` into blocks of `B` columns and
//! solves each block *simultaneously*: the block's columns share one
//! symbolic pattern (the union of their reaches), the `L`-factor is
//! walked once per block, and the inner update loops run over dense
//! `B`-wide panels. The price is **padded zeros**: positions present in
//! the union pattern but absent from an individual column's true
//! pattern. The reordering strategies of §IV exist precisely to shrink
//! that padding.

use crate::trisolve::{solve_pattern, SolveWorkspace, SparseVec};
use sparsekit::Csc;

/// Accounting for one blocked solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockSolveStats {
    /// Rows in the union pattern of the block.
    pub union_rows: usize,
    /// Total *structural* nonzeros over the block's true column patterns.
    pub true_nnz: u64,
    /// Padded zeros: `union_rows · B − true_nnz`.
    pub padded_zeros: u64,
    /// Floating-point operations performed by the numeric phase.
    pub flops: u64,
}

impl BlockSolveStats {
    /// Fraction of the dense panel that is padding.
    pub fn padding_fraction(&self) -> f64 {
        let total = self.true_nnz + self.padded_zeros;
        if total == 0 {
            0.0
        } else {
            self.padded_zeros as f64 / total as f64
        }
    }

    /// Accumulates another block's statistics.
    pub fn merge(&mut self, other: &BlockSolveStats) {
        self.union_rows += other.union_rows;
        self.true_nnz += other.true_nnz;
        self.padded_zeros += other.padded_zeros;
        self.flops += other.flops;
    }
}

/// Solves `T X = B` for a block of sparse right-hand-side columns, where
/// `T` is lower triangular in CSC.
///
/// Returns `(union_pattern, panel, stats)`: `union_pattern` lists the
/// union-reach rows in topological order, and `panel` is dense row-major
/// `union_rows × ncols` holding every column's solution on the union
/// pattern (padded zeros are real zeros in the panel).
pub fn blocked_lower_solve(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    ws: &mut SolveWorkspace,
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    let n = l.nrows();
    let bsize = cols.len();
    if bsize == 0 {
        return (Vec::new(), Vec::new(), BlockSolveStats::default());
    }
    // Per-column true patterns (for padding accounting) and the union.
    let mut true_nnz = 0u64;
    let mut seeds: Vec<usize> = Vec::new();
    for c in cols {
        let pat = solve_pattern(l, &c.indices, ws);
        true_nnz += pat.len() as u64;
        seeds.extend_from_slice(&c.indices);
    }
    seeds.sort_unstable();
    seeds.dedup();
    let union_pattern = solve_pattern(l, &seeds, ws);
    let union_rows = union_pattern.len();
    // Scatter map: matrix row -> panel row.
    let mut pos = vec![usize::MAX; n];
    for (t, &row) in union_pattern.iter().enumerate() {
        pos[row] = t;
    }
    let mut panel = vec![0f64; union_rows * bsize];
    for (c, col) in cols.iter().enumerate() {
        for (&i, &v) in col.indices.iter().zip(&col.values) {
            panel[pos[i] * bsize + c] = v;
        }
    }
    // Forward substitution over the union pattern, all columns at once.
    let mut flops = 0u64;
    for t in 0..union_rows {
        let j = union_pattern[t];
        if !unit_diag {
            let cix = l.col_indices(j);
            let d = cix.binary_search(&j).expect("missing diagonal");
            let dv = l.col_values(j)[d];
            for c in 0..bsize {
                panel[t * bsize + c] /= dv;
            }
            flops += bsize as u64;
        }
        let (head, tail) = panel.split_at_mut((t + 1) * bsize);
        let xrow = &head[t * bsize..];
        for (r, v) in l.col_iter(j) {
            if r <= j {
                continue;
            }
            let pr = pos[r];
            debug_assert!(pr != usize::MAX && pr > t, "union pattern must be closed");
            let dst = &mut tail[(pr - t - 1) * bsize..(pr - t) * bsize];
            for c in 0..bsize {
                dst[c] -= v * xrow[c];
            }
            flops += 2 * bsize as u64;
        }
    }
    let padded_zeros = (union_rows * bsize) as u64 - true_nnz;
    let stats = BlockSolveStats {
        union_rows,
        true_nnz,
        padded_zeros,
        flops,
    };
    (union_pattern, panel, stats)
}

/// Solves all columns in blocks of `block_size`, returning the solution
/// columns (on their block-union patterns) and merged statistics.
pub fn solve_in_blocks(
    l: &Csc,
    unit_diag: bool,
    cols: &[SparseVec],
    block_size: usize,
    ws: &mut SolveWorkspace,
) -> (Vec<SparseVec>, BlockSolveStats) {
    assert!(block_size > 0);
    let mut out = Vec::with_capacity(cols.len());
    let mut stats = BlockSolveStats::default();
    for chunk in cols.chunks(block_size) {
        let (pattern, panel, st) = blocked_lower_solve(l, unit_diag, chunk, ws);
        stats.merge(&st);
        let b = chunk.len();
        for c in 0..b {
            let mut v = SparseVec::default();
            v.indices.reserve(pattern.len());
            v.values.reserve(pattern.len());
            for (t, &row) in pattern.iter().enumerate() {
                v.indices.push(row);
                v.values.push(panel[t * b + c]);
            }
            out.push(v);
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trisolve::sparse_lower_solve;
    use sparsekit::Coo;

    fn bidiag_l(n: usize) -> Csc {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
            if i + 1 < n {
                c.push(i + 1, i, -0.5);
            }
        }
        c.to_csr().to_csc()
    }

    #[test]
    fn blocked_solve_matches_column_solves() {
        let n = 12;
        let l = bidiag_l(n);
        let cols = vec![
            SparseVec::new(vec![2], vec![1.0]),
            SparseVec::new(vec![5], vec![-2.0]),
            SparseVec::new(vec![2, 7], vec![0.5, 3.0]),
        ];
        let mut ws = SolveWorkspace::new(n);
        let (pattern, panel, _stats) = blocked_lower_solve(&l, true, &cols, &mut ws);
        let b = cols.len();
        for (c, col) in cols.iter().enumerate() {
            let x = sparse_lower_solve(&l, true, col, &mut ws);
            let mut dense = vec![0f64; n];
            for (&i, &v) in x.indices.iter().zip(&x.values) {
                dense[i] = v;
            }
            for (t, &row) in pattern.iter().enumerate() {
                assert!(
                    (panel[t * b + c] - dense[row]).abs() < 1e-13,
                    "mismatch col {c} row {row}"
                );
            }
        }
    }

    #[test]
    fn padding_counts_are_exact() {
        let n = 10;
        let l = bidiag_l(n);
        // Reaches: col0 = {2..10} (8 rows), col1 = {7..10} (3 rows).
        let cols = vec![
            SparseVec::new(vec![2], vec![1.0]),
            SparseVec::new(vec![7], vec![1.0]),
        ];
        let mut ws = SolveWorkspace::new(n);
        let (pattern, _panel, stats) = blocked_lower_solve(&l, true, &cols, &mut ws);
        assert_eq!(pattern.len(), 8); // union = {2..10}
        assert_eq!(stats.true_nnz, 8 + 3);
        assert_eq!(stats.padded_zeros, 8 * 2 - 11);
        assert!((stats.padding_fraction() - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn identical_patterns_have_zero_padding() {
        let l = bidiag_l(8);
        let cols = vec![
            SparseVec::new(vec![3], vec![1.0]),
            SparseVec::new(vec![3], vec![2.0]),
        ];
        let mut ws = SolveWorkspace::new(8);
        let (_p, _panel, stats) = blocked_lower_solve(&l, true, &cols, &mut ws);
        assert_eq!(stats.padded_zeros, 0);
    }

    #[test]
    fn block_size_one_has_zero_padding() {
        let l = bidiag_l(16);
        let cols: Vec<SparseVec> = (0..6)
            .map(|i| SparseVec::new(vec![i * 2], vec![1.0]))
            .collect();
        let mut ws = SolveWorkspace::new(16);
        let (_x, stats) = solve_in_blocks(&l, true, &cols, 1, &mut ws);
        assert_eq!(stats.padded_zeros, 0, "B=1 never pads (paper §V-B)");
    }

    #[test]
    fn bigger_blocks_pad_at_least_as_much() {
        let l = bidiag_l(32);
        let cols: Vec<SparseVec> = (0..8)
            .map(|i| SparseVec::new(vec![i * 4], vec![1.0]))
            .collect();
        let mut ws = SolveWorkspace::new(32);
        let (_x1, s1) = solve_in_blocks(&l, true, &cols, 2, &mut ws);
        let (_x2, s2) = solve_in_blocks(&l, true, &cols, 4, &mut ws);
        let (_x3, s3) = solve_in_blocks(&l, true, &cols, 8, &mut ws);
        assert!(s1.padded_zeros <= s2.padded_zeros);
        assert!(s2.padded_zeros <= s3.padded_zeros);
    }

    #[test]
    fn solve_in_blocks_returns_all_columns() {
        let l = bidiag_l(10);
        let cols: Vec<SparseVec> = (0..5).map(|i| SparseVec::new(vec![i], vec![1.0])).collect();
        let mut ws = SolveWorkspace::new(10);
        let (xs, _stats) = solve_in_blocks(&l, true, &cols, 2, &mut ws);
        assert_eq!(xs.len(), 5);
        // First value of each solution equals the seed value (unit diag).
        for (i, x) in xs.iter().enumerate() {
            let mut m = std::collections::HashMap::new();
            for (&r, &v) in x.indices.iter().zip(&x.values) {
                m.insert(r, v);
            }
            assert!((m[&i] - 1.0).abs() < 1e-14);
        }
    }
}
