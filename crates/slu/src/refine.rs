//! Iterative refinement and condition estimation for LU solves.

use crate::LuFactors;
use sparsekit::ops::norm2;
use sparsekit::Csr;

/// Result of an iteratively refined solve.
#[derive(Clone, Debug)]
pub struct RefinedSolve {
    /// The refined solution.
    pub x: Vec<f64>,
    /// Refinement steps performed.
    pub steps: usize,
    /// Final residual ratio `‖b − Ax‖₂ / ‖b‖₂`.
    pub relative_residual: f64,
}

/// Solves `A x = b` with the given factors and applies fixed-precision
/// iterative refinement until the relative residual stops improving or
/// drops below `tol` (at most `max_steps` corrections).
pub fn solve_refined(
    a: &Csr,
    lu: &LuFactors,
    b: &[f64],
    tol: f64,
    max_steps: usize,
) -> RefinedSolve {
    let n = a.nrows();
    assert_eq!(b.len(), n);
    let bnorm = {
        let t = norm2(b);
        if t == 0.0 {
            1.0
        } else {
            t
        }
    };
    let mut x = lu.solve(b);
    let mut steps = 0usize;
    let mut best = f64::INFINITY;
    for _ in 0..max_steps {
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let rel = norm2(&r) / bnorm;
        if rel <= tol || rel >= best {
            break;
        }
        best = rel;
        let d = lu.solve(&r);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        steps += 1;
    }
    let ax = a.matvec(&x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
    RefinedSolve {
        x,
        steps,
        relative_residual: norm2(&r) / bnorm,
    }
}

/// Hager–Higham style 1-norm condition estimate: `‖A‖₁ · est(‖A⁻¹‖₁)`
/// with `A⁻¹` applied through the factors. A cheap, standard diagnostic
/// for the quality of a subdomain or Schur factorisation.
pub fn condest_1(a: &Csr, lu: &LuFactors) -> f64 {
    let n = a.nrows();
    if n == 0 {
        return 0.0;
    }
    // ‖A‖₁ = max column sum — via the transpose's row sums.
    let at = a.transpose();
    let norm_a = (0..n)
        .map(|i| at.row_values(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max);
    // Hager's algorithm on A⁻¹ (apply A⁻¹ and A⁻ᵀ… we avoid the
    // transpose solve by the symmetric-in-spirit power variant: iterate
    // x ← A⁻¹ sign(A⁻¹ x), which lower-bounds ‖A⁻¹‖₁ well in practice).
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0f64;
    for _ in 0..5 {
        let y = lu.solve(&x);
        let y1: f64 = y.iter().map(|v| v.abs()).sum();
        if y1 <= est {
            break;
        }
        est = y1;
        let s: Vec<f64> = y
            .iter()
            .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let z = lu.solve(&s);
        // Next probe: the unit vector at the largest |z| component.
        let (jmax, _) = z
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        x.iter_mut().for_each(|v| *v = 0.0);
        x[jmax] = 1.0;
    }
    norm_a * est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LuConfig;
    use sparsekit::{Coo, Perm};

    fn tridiag(n: usize) -> Csr {
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.0);
            if i + 1 < n {
                c.push_sym(i, i + 1, -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn refinement_reaches_tight_residual() {
        let a = tridiag(60);
        let lu = LuFactors::factorize(&a, &Perm::identity(60), &LuConfig::default()).unwrap();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.7).cos()).collect();
        let r = solve_refined(&a, &lu, &b, 1e-14, 5);
        assert!(
            r.relative_residual < 1e-12,
            "residual {}",
            r.relative_residual
        );
    }

    #[test]
    fn refinement_never_worse_than_plain_solve() {
        let a = tridiag(40);
        let lu = LuFactors::factorize(&a, &Perm::identity(40), &LuConfig::default()).unwrap();
        let b = vec![1.0; 40];
        let plain = lu.solve(&b);
        let plain_res = {
            let ax = a.matvec(&plain);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(u, v)| u - v).collect();
            norm2(&r) / norm2(&b)
        };
        let refined = solve_refined(&a, &lu, &b, 0.0, 3);
        assert!(refined.relative_residual <= plain_res + 1e-16);
    }

    #[test]
    fn condest_identity_is_one() {
        let a = Csr::identity(10);
        let lu = LuFactors::factorize(&a, &Perm::identity(10), &LuConfig::default()).unwrap();
        let k = condest_1(&a, &lu);
        assert!((k - 1.0).abs() < 1e-12, "condest of I should be 1, got {k}");
    }

    #[test]
    fn condest_grows_with_tridiagonal_size() {
        // κ(tridiag(-1,2,-1)) ~ n²; the estimate must reflect the trend.
        let small = {
            let a = tridiag(8);
            let lu = LuFactors::factorize(&a, &Perm::identity(8), &LuConfig::default()).unwrap();
            condest_1(&a, &lu)
        };
        let large = {
            let a = tridiag(64);
            let lu = LuFactors::factorize(&a, &Perm::identity(64), &LuConfig::default()).unwrap();
            condest_1(&a, &lu)
        };
        assert!(
            large > 10.0 * small,
            "condest {small} -> {large} should grow fast"
        );
    }

    #[test]
    fn condest_scales_with_diagonal_scaling() {
        let n = 12;
        let mut c = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, if i == 0 { 1e-6 } else { 1.0 });
        }
        let a = c.to_csr();
        let lu = LuFactors::factorize(&a, &Perm::identity(n), &LuConfig::default()).unwrap();
        let k = condest_1(&a, &lu);
        assert!(k > 1e5, "badly scaled diagonal must show up: {k}");
    }
}
