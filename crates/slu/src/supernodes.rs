//! Supernode detection and supernodal blocked triangular solves.
//!
//! SuperLU-family solvers group columns with (nearly) identical
//! structure into *supernodes* and run dense kernels on them. The
//! paper's triangular solver is supernodal, and its Fig. 4 counts the
//! padded zeros *in the supernodal blocks*: when a right-hand side
//! reaches any column of a supernode, the whole supernode participates.
//! This module provides the same machinery on top of our
//! column-oriented factor: fundamental supernode detection (with a
//! subset relaxation), a [`SupernodePlan`] that packs each supernode's
//! diagonal block and below-rows into dense microkernel-ready blocks
//! **once**, and a blocked solve that runs `dtrsm`/`dgemm`-like panel
//! kernels ([`crate::microkernel`]) over those blocks — bit-identical
//! to the scalar reference ([`supernodal_blocked_solve_reference`]).

use crate::microkernel::{rank_update_row, trsm_unit_lower};
use crate::trisolve::{compute_reach, solve_pattern, SolveWorkspace, SparseVec};
use crate::BlockSolveStats;
use sparsekit::Csc;

/// A partition of the columns `0..n` into supernodes of consecutive
/// columns.
#[derive(Clone, Debug)]
pub struct Supernodes {
    /// `sn_ptr[s]..sn_ptr[s+1]` is the column range of supernode `s`.
    pub sn_ptr: Vec<usize>,
    /// `sn_of[j]` = supernode containing column `j`.
    pub sn_of: Vec<usize>,
}

impl Supernodes {
    /// Number of supernodes.
    pub fn count(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// Column range of supernode `s`.
    pub fn columns(&self, s: usize) -> std::ops::Range<usize> {
        self.sn_ptr[s]..self.sn_ptr[s + 1]
    }

    /// Size of the largest supernode.
    ///
    /// This traverses every supernode on each call; hot loops should use
    /// the width hoisted into a [`SupernodePlan`] instead.
    pub fn max_size(&self) -> usize {
        (0..self.count())
            .map(|s| self.columns(s).len())
            .max()
            .unwrap_or(0)
    }
}

/// Detects supernodes in a lower-triangular factor.
///
/// Column `j+1` joins the supernode of column `j` when its pattern is a
/// subset of `pattern(L(:,j)) \ {j}` missing at most `relax` rows (the
/// strict fundamental-supernode rule is `relax == 0`, where the two
/// patterns must match exactly).
pub fn detect_supernodes(l: &Csc, relax: usize) -> Supernodes {
    let n = l.ncols();
    let mut sn_ptr = vec![0usize];
    let mut sn_of = vec![0usize; n];
    if n == 0 {
        return Supernodes { sn_ptr, sn_of };
    }
    let mut current = 0usize;
    for j in 1..n {
        let prev = l.col_indices(j - 1);
        let cur = l.col_indices(j);
        // prev[0] is the diagonal j-1; the remainder must cover `cur`.
        let prev_tail = if prev.first() == Some(&(j - 1)) {
            &prev[1..]
        } else {
            prev
        };
        let joined = prev_tail.len() >= cur.len()
            && prev_tail.len() - cur.len() <= relax
            && is_subset(cur, prev_tail);
        if joined {
            sn_of[j] = current;
        } else {
            sn_ptr.push(j);
            current += 1;
            sn_of[j] = current;
        }
    }
    sn_ptr.push(n);
    Supernodes { sn_ptr, sn_of }
}

/// True if sorted `a` is a subset of sorted `b`.
fn is_subset(a: &[usize], b: &[usize]) -> bool {
    let mut ib = 0usize;
    for &x in a {
        while ib < b.len() && b[ib] < x {
            ib += 1;
        }
        if ib == b.len() || b[ib] != x {
            return false;
        }
        ib += 1;
    }
    true
}

/// The build-once execution plan of the supernodal blocked solve: the
/// supernode partition plus, per supernode, everything the hot loop
/// used to recompute per call — hoisted column ranges and widths, the
/// shared below-the-block row list, and the factor values packed into
/// dense microkernel-ready blocks.
///
/// Supernodes of width ≥ 2 get a column-major `w × w` diagonal block
/// (for the `dtrsm`-like panel solve) and a row-major `n_below × w`
/// below-block (one contiguous coefficient row per destination — the
/// layout the register-tiled rank-`w` update wants). Singletons carry
/// no packed data and fall back to the scalar path.
#[derive(Clone, Debug)]
pub struct SupernodePlan {
    sn: Supernodes,
    /// Hoisted `sn_ptr[s]` (start column of supernode `s`).
    start: Vec<usize>,
    /// Hoisted `sn_ptr[s+1] - sn_ptr[s]`.
    width: Vec<usize>,
    max_width: usize,
    /// Below-rows lists, CSR-like over supernodes (empty for width 1).
    rows_ptr: Vec<usize>,
    rows: Vec<usize>,
    /// Packed diagonal blocks (column-major `w × w`), offsets per
    /// supernode (empty range for width 1).
    diag_ptr: Vec<usize>,
    diag: Vec<f64>,
    /// Packed below blocks (row-major `n_below × w`).
    below_ptr: Vec<usize>,
    below: Vec<f64>,
}

impl SupernodePlan {
    /// Detects supernodes in `l` with the given relaxation and packs
    /// their dense blocks. `O(nnz(L))` time and at most `O(nnz(L))`
    /// extra storage (plus padding for relaxed supernodes).
    ///
    /// The blocked solve requires the rounding closure property the
    /// scalar path already relied on: every row of a supernode's leading
    /// column must lie inside the rounded pattern whenever any column of
    /// the supernode is reached. Strict fundamental supernodes
    /// (`relax == 0`) guarantee it; relaxed detection is only safe for
    /// padding *accounting*, not for this solver.
    pub fn build(l: &Csc, relax: usize) -> SupernodePlan {
        let sn = detect_supernodes(l, relax);
        Self::from_supernodes(l, sn)
    }

    /// Packs the plan for an already-detected partition (see
    /// [`SupernodePlan::build`] for the closure requirement).
    pub fn from_supernodes(l: &Csc, sn: Supernodes) -> SupernodePlan {
        let n = l.ncols();
        let count = sn.count();
        let mut start = Vec::with_capacity(count);
        let mut width = Vec::with_capacity(count);
        let mut max_width = 0usize;
        let mut rows_ptr = vec![0usize];
        let mut rows: Vec<usize> = Vec::new();
        let mut diag_ptr = vec![0usize];
        let mut diag: Vec<f64> = Vec::new();
        let mut below_ptr = vec![0usize];
        let mut below: Vec<f64> = Vec::new();
        // Scatter map: matrix row -> index in the current supernode's
        // below-row list (build-time only).
        let mut bi_of = vec![usize::MAX; n];
        for s in 0..count {
            let (j0, j1) = (sn.sn_ptr[s], sn.sn_ptr[s + 1]);
            let w = j1 - j0;
            start.push(j0);
            width.push(w);
            max_width = max_width.max(w);
            if w >= 2 {
                // The leading column's pattern covers every later
                // column's (subset rule), so its tail past the diagonal
                // block is the shared below-row list.
                let first_below = rows.len();
                for &r in l.col_indices(j0) {
                    if r >= j1 {
                        bi_of[r] = rows.len() - first_below;
                        rows.push(r);
                    }
                }
                let nbelow = rows.len() - first_below;
                let d0 = diag.len();
                let b0 = below.len();
                diag.resize(d0 + w * w, 0.0);
                below.resize(b0 + nbelow * w, 0.0);
                for j in j0..j1 {
                    let jj = j - j0;
                    for (r, v) in l.col_iter(j) {
                        if r < j1 {
                            diag[d0 + jj * w + (r - j0)] = v;
                        } else {
                            below[b0 + bi_of[r] * w + jj] = v;
                        }
                    }
                }
                for &r in &rows[first_below..] {
                    bi_of[r] = usize::MAX;
                }
            }
            rows_ptr.push(rows.len());
            diag_ptr.push(diag.len());
            below_ptr.push(below.len());
        }
        SupernodePlan {
            sn,
            start,
            width,
            max_width,
            rows_ptr,
            rows,
            diag_ptr,
            diag,
            below_ptr,
            below,
        }
    }

    /// The underlying supernode partition.
    pub fn supernodes(&self) -> &Supernodes {
        &self.sn
    }

    /// Number of supernodes.
    pub fn count(&self) -> usize {
        self.width.len()
    }

    /// Width of the widest supernode (hoisted; `O(1)`).
    pub fn max_width(&self) -> usize {
        self.max_width
    }
}

/// Blocked lower solve with the symbolic pattern rounded up to supernode
/// boundaries (the paper's §IV setting), running the dense microkernel
/// tier over the plan's packed blocks.
///
/// Returns `(expanded_pattern, panel, stats)` like
/// [`crate::blocked_lower_solve`], with `stats.padded_zeros` counted
/// against the *supernodal* union pattern (so it includes both the
/// block-union padding and the supernode rounding). Bit-identical to
/// [`supernodal_blocked_solve_reference`]; faster because the symbolic
/// union is accumulated from the per-column reaches instead of
/// re-reached from scratch, and the numeric sweep runs packed dense
/// panels instead of per-entry scatter updates.
pub fn supernodal_blocked_solve(
    l: &Csc,
    plan: &SupernodePlan,
    cols: &[SparseVec],
    ws: &mut SolveWorkspace,
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    if cols.is_empty() {
        return (Vec::new(), Vec::new(), BlockSolveStats::default());
    }
    // True per-column reach for padding accounting. The union needs no
    // second reach: marking each reached column's supernode as we go
    // accumulates exactly the supernode rounding of the union (reach
    // distributes over seed unions).
    let mut sn_touched = vec![false; plan.count()];
    let mut true_nnz = 0u64;
    for c in cols {
        compute_reach(l, &c.indices, ws);
        true_nnz += ws.topo().len() as u64;
        for &j in ws.topo() {
            sn_touched[plan.sn.sn_of[j]] = true;
        }
    }
    solve_rounded(l, plan, cols, &sn_touched, true_nnz)
}

/// [`supernodal_blocked_solve`] with the per-column reaches supplied by
/// the caller, skipping the symbolic pass entirely.
///
/// On sparse factors the per-column reach dominates the blocked solve —
/// and the RHS-ordering pass (`column_reaches` upstream) has already
/// computed exactly those reaches to score the orderings, so re-deriving
/// them here is pure redundancy. `reaches[c]` must be the reach of
/// `cols[c].indices` in `l` (any order); output is bit-identical to the
/// self-reaching entry points.
pub fn supernodal_blocked_solve_precomputed(
    l: &Csc,
    plan: &SupernodePlan,
    cols: &[SparseVec],
    reaches: &[Vec<usize>],
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    assert_eq!(cols.len(), reaches.len());
    if cols.is_empty() {
        return (Vec::new(), Vec::new(), BlockSolveStats::default());
    }
    let mut sn_touched = vec![false; plan.count()];
    let mut true_nnz = 0u64;
    for reach in reaches {
        true_nnz += reach.len() as u64;
        for &j in reach {
            sn_touched[plan.sn.sn_of[j]] = true;
        }
    }
    solve_rounded(l, plan, cols, &sn_touched, true_nnz)
}

/// Numeric phase shared by the supernodal entry points: builds the
/// rounded union pattern from the touched-supernode set and runs the
/// dense-microkernel sweep.
fn solve_rounded(
    l: &Csc,
    plan: &SupernodePlan,
    cols: &[SparseVec],
    sn_touched: &[bool],
    true_nnz: u64,
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    let n = l.nrows();
    let bsize = cols.len();
    let mut pattern: Vec<usize> = Vec::new();
    for (s, &touched) in sn_touched.iter().enumerate() {
        if touched {
            pattern.extend(plan.start[s]..plan.start[s] + plan.width[s]);
        }
    }
    // Ascending column order is a valid topological order for a lower
    // triangular solve.
    let union_rows = pattern.len();
    let mut pos = vec![usize::MAX; n];
    for (t, &row) in pattern.iter().enumerate() {
        pos[row] = t;
    }
    let mut panel = vec![0f64; union_rows * bsize];
    for (c, col) in cols.iter().enumerate() {
        for (&i, &v) in col.indices.iter().zip(&col.values) {
            panel[pos[i] * bsize + c] = v;
        }
    }
    let mut flops = 0u64;
    let mut t = 0usize;
    for (s, &touched) in sn_touched.iter().enumerate() {
        if !touched {
            continue;
        }
        let w = plan.width[s];
        if w == 1 {
            // Scalar fallback for singleton supernodes.
            let j = plan.start[s];
            let (head, tail) = panel.split_at_mut((t + 1) * bsize);
            let xrow = &head[t * bsize..];
            for (r, v) in l.col_iter(j) {
                if r <= j {
                    continue;
                }
                let pr = pos[r];
                debug_assert!(
                    pr != usize::MAX && pr > t,
                    "supernodal pattern must be closed"
                );
                sparsekit::lanes::axpy_neg(
                    &mut tail[(pr - t - 1) * bsize..(pr - t) * bsize],
                    xrow,
                    v,
                );
                flops += 2 * bsize as u64;
            }
            t += 1;
            continue;
        }
        // Dense tier: trsm over the diagonal block, then a rank-w
        // register-tiled update of every below row.
        let (head, tail) = panel.split_at_mut((t + w) * bsize);
        let sn_panel = &mut head[t * bsize..];
        trsm_unit_lower(
            &plan.diag[plan.diag_ptr[s]..plan.diag_ptr[s + 1]],
            w,
            sn_panel,
            bsize,
        );
        let sn_panel = &head[t * bsize..];
        let rows = &plan.rows[plan.rows_ptr[s]..plan.rows_ptr[s + 1]];
        let below = &plan.below[plan.below_ptr[s]..plan.below_ptr[s + 1]];
        for (bi, &r) in rows.iter().enumerate() {
            let pr = pos[r];
            debug_assert!(
                pr != usize::MAX && pr >= t + w,
                "supernodal pattern must be closed"
            );
            let dst = &mut tail[(pr - t - w) * bsize..(pr - t - w + 1) * bsize];
            rank_update_row(dst, sn_panel, &below[bi * w..(bi + 1) * w], bsize);
        }
        flops += (2 * bsize * (w * (w - 1) / 2 + rows.len() * w)) as u64;
        t += w;
    }
    debug_assert_eq!(t, union_rows);
    let padded_zeros = (union_rows * bsize) as u64 - true_nnz;
    let stats = BlockSolveStats {
        union_rows,
        true_nnz,
        padded_zeros,
        flops,
    };
    (pattern, panel, stats)
}

/// The pre-microkernel scalar path, kept verbatim as the bit-identity
/// reference for [`supernodal_blocked_solve`]: per-column symbolic
/// re-reach, a second union reach, and a per-entry scatter update loop.
/// `bench_kernels` times the two against each other and the property
/// tests assert exact equality of pattern, panel, and stats.
pub fn supernodal_blocked_solve_reference(
    l: &Csc,
    sn: &Supernodes,
    cols: &[SparseVec],
    ws: &mut SolveWorkspace,
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    let n = l.nrows();
    let bsize = cols.len();
    if bsize == 0 {
        return (Vec::new(), Vec::new(), BlockSolveStats::default());
    }
    // True per-column reach for padding accounting + union seeds.
    let mut true_nnz = 0u64;
    let mut seeds: Vec<usize> = Vec::new();
    for c in cols {
        let pat = solve_pattern(l, &c.indices, ws);
        true_nnz += pat.len() as u64;
        seeds.extend_from_slice(&c.indices);
    }
    seeds.sort_unstable();
    seeds.dedup();
    let union = solve_pattern(l, &seeds, ws);
    // Round up to supernodes.
    let mut sn_touched = vec![false; sn.count()];
    for &j in &union {
        sn_touched[sn.sn_of[j]] = true;
    }
    let mut pattern: Vec<usize> = Vec::with_capacity(union.len());
    for (s, &touched) in sn_touched.iter().enumerate() {
        if touched {
            pattern.extend(sn.columns(s));
        }
    }
    let union_rows = pattern.len();
    let mut pos = vec![usize::MAX; n];
    for (t, &row) in pattern.iter().enumerate() {
        pos[row] = t;
    }
    let mut panel = vec![0f64; union_rows * bsize];
    for (c, col) in cols.iter().enumerate() {
        for (&i, &v) in col.indices.iter().zip(&col.values) {
            panel[pos[i] * bsize + c] = v;
        }
    }
    let mut flops = 0u64;
    for t in 0..union_rows {
        let j = pattern[t];
        let (head, tail) = panel.split_at_mut((t + 1) * bsize);
        let xrow = &head[t * bsize..];
        for (r, v) in l.col_iter(j) {
            if r <= j {
                continue;
            }
            let pr = pos[r];
            debug_assert!(
                pr != usize::MAX && pr > t,
                "supernodal pattern must be closed"
            );
            let dst = &mut tail[(pr - t - 1) * bsize..(pr - t) * bsize];
            for c in 0..bsize {
                dst[c] -= v * xrow[c];
            }
            flops += 2 * bsize as u64;
        }
    }
    let padded_zeros = (union_rows * bsize) as u64 - true_nnz;
    let stats = BlockSolveStats {
        union_rows,
        true_nnz,
        padded_zeros,
        flops,
    };
    (pattern, panel, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::blocked_lower_solve;
    use sparsekit::Coo;

    /// A factor with two clear supernodes: columns {0,1} share structure
    /// (rows 0..4), columns {2,3} share structure (rows 2..4), column 4
    /// is a singleton.
    fn two_supernode_l() -> Csc {
        let mut c = Coo::new(5, 5);
        for j in 0..5 {
            c.push(j, j, 1.0);
        }
        for &(i, j) in &[
            (1, 0),
            (2, 0),
            (3, 0),
            (2, 1),
            (3, 1),
            (3, 2),
            (4, 2),
            (4, 3),
        ] {
            c.push(i, j, -0.5);
        }
        c.to_csr().to_csc()
    }

    #[test]
    fn fundamental_detection() {
        let l = two_supernode_l();
        let sn = detect_supernodes(&l, 0);
        // Column 1 pattern {1,2,3} == col 0 tail {1,2,3}: joined.
        // Column 2 pattern {2,3,4} != col 1 tail {2,3}: new supernode.
        // Column 3 pattern {3,4} == col 2 tail {3,4}: joined.
        // Column 4 pattern {4} == col 3 tail {4}: joined.
        assert_eq!(sn.sn_ptr, vec![0, 2, 5]);
        assert_eq!(sn.sn_of, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn identity_factor_has_singleton_supernodes() {
        // Identity L: every column's tail is empty while the next column
        // still holds its own diagonal, so nothing merges.
        let l = sparsekit::Csr::identity(4).to_csc();
        let sn = detect_supernodes(&l, 0);
        assert_eq!(sn.count(), 4);
        assert_eq!(sn.max_size(), 1);
        let plan = SupernodePlan::from_supernodes(&l, sn);
        assert_eq!(plan.max_width(), 1);
        assert!(plan.diag.is_empty() && plan.below.is_empty());
    }

    #[test]
    fn relaxation_merges_near_matches() {
        // col0: rows {0,1,2,3}; col1: rows {1,3} (misses 2).
        let mut c = Coo::new(4, 4);
        for j in 0..4 {
            c.push(j, j, 1.0);
        }
        c.push(1, 0, -0.5);
        c.push(2, 0, -0.5);
        c.push(3, 0, -0.5);
        c.push(3, 1, -0.5);
        let l = c.to_csr().to_csc();
        let strict = detect_supernodes(&l, 0);
        let relaxed = detect_supernodes(&l, 1);
        assert!(strict.count() > relaxed.count() || strict.count() == relaxed.count());
        // With relax=1 column 1 ({1,3}) joins col 0's tail ({1,2,3}).
        assert_eq!(relaxed.sn_of[1], relaxed.sn_of[0]);
    }

    #[test]
    fn plan_hoists_ranges_and_packs_blocks() {
        let l = two_supernode_l();
        let plan = SupernodePlan::build(&l, 0);
        assert_eq!(plan.count(), 2);
        assert_eq!(plan.max_width(), 3);
        assert_eq!(plan.start, vec![0, 2]);
        assert_eq!(plan.width, vec![2, 3]);
        // Supernode 0 = cols {0,1}, diag block 2×2 (unit diag + L[1,0]),
        // below rows {2,3}.
        assert_eq!(&plan.rows[plan.rows_ptr[0]..plan.rows_ptr[1]], &[2, 3]);
        let d = &plan.diag[plan.diag_ptr[0]..plan.diag_ptr[1]];
        assert_eq!(d[1], -0.5); // L[1,0], column-major position (0·w + 1)
        let b = &plan.below[plan.below_ptr[0]..plan.below_ptr[1]];
        // Row-major per below row: row 2 gets [L[2,0], L[2,1]].
        assert_eq!(b, &[-0.5, -0.5, -0.5, -0.5]);
    }

    #[test]
    fn supernodal_solve_matches_columnwise_solve() {
        let l = two_supernode_l();
        let plan = SupernodePlan::build(&l, 0);
        let cols = vec![
            SparseVec::new(vec![0], vec![1.0]),
            SparseVec::new(vec![2], vec![-2.0]),
        ];
        let mut ws = SolveWorkspace::new(5);
        let (pat_s, panel_s, stats_s) = supernodal_blocked_solve(&l, &plan, &cols, &mut ws);
        let mut bws = crate::blocked::BlockWorkspace::new(5);
        let (pat_c, panel_c, stats_c) = blocked_lower_solve(&l, true, &cols, &mut bws);
        // Values agree on the common pattern.
        let mut dense_c = vec![vec![0.0; 5]; 2];
        for (t, &row) in pat_c.iter().enumerate() {
            for c in 0..2 {
                dense_c[c][row] = panel_c[t * 2 + c];
            }
        }
        for (t, &row) in pat_s.iter().enumerate() {
            for c in 0..2 {
                assert!(
                    (panel_s[t * 2 + c] - dense_c[c][row]).abs() < 1e-13,
                    "value mismatch at row {row} col {c}"
                );
            }
        }
        // Supernodal padding ≥ column padding (rounding can only add).
        assert!(stats_s.padded_zeros >= stats_c.padded_zeros);
        assert_eq!(stats_s.true_nnz, stats_c.true_nnz);
    }

    #[test]
    fn microkernel_solve_bit_identical_to_reference() {
        let l = two_supernode_l();
        let plan = SupernodePlan::build(&l, 0);
        let sn = detect_supernodes(&l, 0);
        for cols in [
            vec![SparseVec::new(vec![0], vec![1.25])],
            vec![
                SparseVec::new(vec![0], vec![1.0]),
                SparseVec::new(vec![2], vec![-2.0]),
                SparseVec::new(vec![1, 3], vec![0.3, 7.5]),
            ],
        ] {
            let mut ws = SolveWorkspace::new(5);
            let fast = supernodal_blocked_solve(&l, &plan, &cols, &mut ws);
            let slow = supernodal_blocked_solve_reference(&l, &sn, &cols, &mut ws);
            assert_eq!(fast.0, slow.0, "pattern");
            assert_eq!(fast.1, slow.1, "panel bits");
            assert_eq!(fast.2, slow.2, "stats");
        }
    }

    #[test]
    fn supernode_rounding_expands_pattern() {
        let l = two_supernode_l();
        let plan = SupernodePlan::build(&l, 0);
        // Seeding column 3 only: column reach {3,4}, but supernode 1 is
        // {2,3,4} → expanded pattern has 3 rows.
        let cols = vec![SparseVec::new(vec![3], vec![1.0])];
        let mut ws = SolveWorkspace::new(5);
        let (pat, _panel, stats) = supernodal_blocked_solve(&l, &plan, &cols, &mut ws);
        assert_eq!(pat, vec![2, 3, 4]);
        assert_eq!(stats.true_nnz, 2);
        assert_eq!(stats.padded_zeros, 1);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
    }
}
