//! Supernode detection and supernodal blocked triangular solves.
//!
//! SuperLU-family solvers group columns with (nearly) identical
//! structure into *supernodes* and run dense kernels on them. The
//! paper's triangular solver is supernodal, and its Fig. 4 counts the
//! padded zeros *in the supernodal blocks*: when a right-hand side
//! reaches any column of a supernode, the whole supernode participates.
//! This module provides the same machinery on top of our
//! column-oriented factor: fundamental supernode detection (with a
//! subset relaxation) and a blocked solve whose symbolic pattern is
//! rounded up to supernode boundaries.

use crate::trisolve::{solve_pattern, SolveWorkspace, SparseVec};
use crate::BlockSolveStats;
use sparsekit::Csc;

/// A partition of the columns `0..n` into supernodes of consecutive
/// columns.
#[derive(Clone, Debug)]
pub struct Supernodes {
    /// `sn_ptr[s]..sn_ptr[s+1]` is the column range of supernode `s`.
    pub sn_ptr: Vec<usize>,
    /// `sn_of[j]` = supernode containing column `j`.
    pub sn_of: Vec<usize>,
}

impl Supernodes {
    /// Number of supernodes.
    pub fn count(&self) -> usize {
        self.sn_ptr.len() - 1
    }

    /// Column range of supernode `s`.
    pub fn columns(&self, s: usize) -> std::ops::Range<usize> {
        self.sn_ptr[s]..self.sn_ptr[s + 1]
    }

    /// Size of the largest supernode.
    pub fn max_size(&self) -> usize {
        (0..self.count())
            .map(|s| self.columns(s).len())
            .max()
            .unwrap_or(0)
    }
}

/// Detects supernodes in a lower-triangular factor.
///
/// Column `j+1` joins the supernode of column `j` when its pattern is a
/// subset of `pattern(L(:,j)) \ {j}` missing at most `relax` rows (the
/// strict fundamental-supernode rule is `relax == 0`, where the two
/// patterns must match exactly).
pub fn detect_supernodes(l: &Csc, relax: usize) -> Supernodes {
    let n = l.ncols();
    let mut sn_ptr = vec![0usize];
    let mut sn_of = vec![0usize; n];
    if n == 0 {
        return Supernodes { sn_ptr, sn_of };
    }
    let mut current = 0usize;
    for j in 1..n {
        let prev = l.col_indices(j - 1);
        let cur = l.col_indices(j);
        // prev[0] is the diagonal j-1; the remainder must cover `cur`.
        let prev_tail = if prev.first() == Some(&(j - 1)) {
            &prev[1..]
        } else {
            prev
        };
        let joined = prev_tail.len() >= cur.len()
            && prev_tail.len() - cur.len() <= relax
            && is_subset(cur, prev_tail);
        if joined {
            sn_of[j] = current;
        } else {
            sn_ptr.push(j);
            current += 1;
            sn_of[j] = current;
        }
    }
    sn_ptr.push(n);
    Supernodes { sn_ptr, sn_of }
}

/// True if sorted `a` is a subset of sorted `b`.
fn is_subset(a: &[usize], b: &[usize]) -> bool {
    let mut ib = 0usize;
    for &x in a {
        while ib < b.len() && b[ib] < x {
            ib += 1;
        }
        if ib == b.len() || b[ib] != x {
            return false;
        }
        ib += 1;
    }
    true
}

/// Blocked lower solve with the symbolic pattern rounded up to supernode
/// boundaries (the paper's §IV setting).
///
/// Returns `(expanded_pattern, panel, stats)` like
/// [`crate::blocked_lower_solve`], with `stats.padded_zeros` counted
/// against the *supernodal* union pattern (so it includes both the
/// block-union padding and the supernode rounding).
pub fn supernodal_blocked_solve(
    l: &Csc,
    sn: &Supernodes,
    cols: &[SparseVec],
    ws: &mut SolveWorkspace,
) -> (Vec<usize>, Vec<f64>, BlockSolveStats) {
    let n = l.nrows();
    let bsize = cols.len();
    if bsize == 0 {
        return (Vec::new(), Vec::new(), BlockSolveStats::default());
    }
    // True per-column reach for padding accounting + union seeds.
    let mut true_nnz = 0u64;
    let mut seeds: Vec<usize> = Vec::new();
    for c in cols {
        let pat = solve_pattern(l, &c.indices, ws);
        true_nnz += pat.len() as u64;
        seeds.extend_from_slice(&c.indices);
    }
    seeds.sort_unstable();
    seeds.dedup();
    let union = solve_pattern(l, &seeds, ws);
    // Round up to supernodes.
    let mut sn_touched = vec![false; sn.count()];
    for &j in &union {
        sn_touched[sn.sn_of[j]] = true;
    }
    let mut pattern: Vec<usize> = Vec::with_capacity(union.len());
    for (s, &touched) in sn_touched.iter().enumerate() {
        if touched {
            pattern.extend(sn.columns(s));
        }
    }
    // Ascending column order is a valid topological order for a lower
    // triangular solve.
    let union_rows = pattern.len();
    let mut pos = vec![usize::MAX; n];
    for (t, &row) in pattern.iter().enumerate() {
        pos[row] = t;
    }
    let mut panel = vec![0f64; union_rows * bsize];
    for (c, col) in cols.iter().enumerate() {
        for (&i, &v) in col.indices.iter().zip(&col.values) {
            panel[pos[i] * bsize + c] = v;
        }
    }
    let mut flops = 0u64;
    for t in 0..union_rows {
        let j = pattern[t];
        let (head, tail) = panel.split_at_mut((t + 1) * bsize);
        let xrow = &head[t * bsize..];
        for (r, v) in l.col_iter(j) {
            if r <= j {
                continue;
            }
            let pr = pos[r];
            debug_assert!(
                pr != usize::MAX && pr > t,
                "supernodal pattern must be closed"
            );
            let dst = &mut tail[(pr - t - 1) * bsize..(pr - t) * bsize];
            for c in 0..bsize {
                dst[c] -= v * xrow[c];
            }
            flops += 2 * bsize as u64;
        }
    }
    let padded_zeros = (union_rows * bsize) as u64 - true_nnz;
    let stats = BlockSolveStats {
        union_rows,
        true_nnz,
        padded_zeros,
        flops,
    };
    (pattern, panel, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocked::blocked_lower_solve;
    use sparsekit::Coo;

    /// A factor with two clear supernodes: columns {0,1} share structure
    /// (rows 0..4), columns {2,3} share structure (rows 2..4), column 4
    /// is a singleton.
    fn two_supernode_l() -> Csc {
        let mut c = Coo::new(5, 5);
        for j in 0..5 {
            c.push(j, j, 1.0);
        }
        for &(i, j) in &[
            (1, 0),
            (2, 0),
            (3, 0),
            (2, 1),
            (3, 1),
            (3, 2),
            (4, 2),
            (4, 3),
        ] {
            c.push(i, j, -0.5);
        }
        c.to_csr().to_csc()
    }

    #[test]
    fn fundamental_detection() {
        let l = two_supernode_l();
        let sn = detect_supernodes(&l, 0);
        // Column 1 pattern {1,2,3} == col 0 tail {1,2,3}: joined.
        // Column 2 pattern {2,3,4} != col 1 tail {2,3}: new supernode.
        // Column 3 pattern {3,4} == col 2 tail {3,4}: joined.
        // Column 4 pattern {4} == col 3 tail {4}: joined.
        assert_eq!(sn.sn_ptr, vec![0, 2, 5]);
        assert_eq!(sn.sn_of, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    fn identity_factor_has_singleton_supernodes() {
        // Identity L: every column's tail is empty while the next column
        // still holds its own diagonal, so nothing merges.
        let l = sparsekit::Csr::identity(4).to_csc();
        let sn = detect_supernodes(&l, 0);
        assert_eq!(sn.count(), 4);
        assert_eq!(sn.max_size(), 1);
    }

    #[test]
    fn relaxation_merges_near_matches() {
        // col0: rows {0,1,2,3}; col1: rows {1,3} (misses 2).
        let mut c = Coo::new(4, 4);
        for j in 0..4 {
            c.push(j, j, 1.0);
        }
        c.push(1, 0, -0.5);
        c.push(2, 0, -0.5);
        c.push(3, 0, -0.5);
        c.push(3, 1, -0.5);
        let l = c.to_csr().to_csc();
        let strict = detect_supernodes(&l, 0);
        let relaxed = detect_supernodes(&l, 1);
        assert!(strict.count() > relaxed.count() || strict.count() == relaxed.count());
        // With relax=1 column 1 ({1,3}) joins col 0's tail ({1,2,3}).
        assert_eq!(relaxed.sn_of[1], relaxed.sn_of[0]);
    }

    #[test]
    fn supernodal_solve_matches_columnwise_solve() {
        let l = two_supernode_l();
        let sn = detect_supernodes(&l, 0);
        let cols = vec![
            SparseVec::new(vec![0], vec![1.0]),
            SparseVec::new(vec![2], vec![-2.0]),
        ];
        let mut ws = SolveWorkspace::new(5);
        let (pat_s, panel_s, stats_s) = supernodal_blocked_solve(&l, &sn, &cols, &mut ws);
        let mut bws = crate::blocked::BlockWorkspace::new(5);
        let (pat_c, panel_c, stats_c) = blocked_lower_solve(&l, true, &cols, &mut bws);
        // Values agree on the common pattern.
        let mut dense_c = vec![vec![0.0; 5]; 2];
        for (t, &row) in pat_c.iter().enumerate() {
            for c in 0..2 {
                dense_c[c][row] = panel_c[t * 2 + c];
            }
        }
        for (t, &row) in pat_s.iter().enumerate() {
            for c in 0..2 {
                assert!(
                    (panel_s[t * 2 + c] - dense_c[c][row]).abs() < 1e-13,
                    "value mismatch at row {row} col {c}"
                );
            }
        }
        // Supernodal padding ≥ column padding (rounding can only add).
        assert!(stats_s.padded_zeros >= stats_c.padded_zeros);
        assert_eq!(stats_s.true_nnz, stats_c.true_nnz);
    }

    #[test]
    fn supernode_rounding_expands_pattern() {
        let l = two_supernode_l();
        let sn = detect_supernodes(&l, 0);
        // Seeding column 3 only: column reach {3,4}, but supernode 1 is
        // {2,3,4} → expanded pattern has 3 rows.
        let cols = vec![SparseVec::new(vec![3], vec![1.0])];
        let mut ws = SolveWorkspace::new(5);
        let (pat, _panel, stats) = supernodal_blocked_solve(&l, &sn, &cols, &mut ws);
        assert_eq!(pat, vec![2, 3, 4]);
        assert_eq!(stats.true_nnz, 2);
        assert_eq!(stats.padded_zeros, 1);
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
    }
}
