//! Column-net and row-net hypergraph models of sparse matrices (§II of
//! the paper, after Çatalyürek & Aykanat).

use crate::Hypergraph;
use sparsekit::Csr;

/// Column-net model `H_C(M)`: one vertex per **row**, one net per
/// **column**; row-vertex `i` is a pin of column-net `j` iff `m_ij ≠ 0`.
///
/// Unit vertex weights (one constraint) and unit net costs.
pub fn column_net_model(m: &Csr) -> Hypergraph {
    column_net_model_weighted(m, &vec![1i64; m.nrows()], 1, 1)
}

/// Column-net model with caller-supplied vertex weights (row-major,
/// `ncon` per row) and a uniform net cost.
pub fn column_net_model_weighted(m: &Csr, vwgt: &[i64], ncon: usize, net_cost: i64) -> Hypergraph {
    let mut pins: Vec<Vec<usize>> = vec![Vec::new(); m.ncols()];
    for i in 0..m.nrows() {
        for &j in m.row_indices(i) {
            pins[j].push(i);
        }
    }
    let ncost = vec![net_cost; m.ncols()];
    Hypergraph::from_pin_lists(m.nrows(), &pins, vwgt.to_vec(), ncon, ncost)
}

/// Row-net model `H_R(M)`: one vertex per **column**, one net per
/// **row** — the column-net model of `Mᵀ`.
///
/// Used in §IV-B to partition right-hand-side columns by the row
/// structure of the solution vectors `G`: `net_cost` is the block size
/// `B` (the paper shows minimising con1 with cost-`B` nets equals
/// minimising padded zeros up to a constant).
pub fn row_net_model(m: &Csr, net_cost: i64) -> Hypergraph {
    let mut pins: Vec<Vec<usize>> = Vec::with_capacity(m.nrows());
    for i in 0..m.nrows() {
        pins.push(m.row_indices(i).to_vec());
    }
    let ncost = vec![net_cost; m.nrows()];
    Hypergraph::from_pin_lists(m.ncols(), &pins, vec![1i64; m.ncols()], 1, ncost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Coo;

    fn sample() -> Csr {
        // 3x4:
        // [x . x .]
        // [. x x .]
        // [x . . x]
        let mut c = Coo::new(3, 4);
        c.push(0, 0, 1.0);
        c.push(0, 2, 1.0);
        c.push(1, 1, 1.0);
        c.push(1, 2, 1.0);
        c.push(2, 0, 1.0);
        c.push(2, 3, 1.0);
        c.to_csr()
    }

    #[test]
    fn column_net_pins_follow_columns() {
        let h = column_net_model(&sample());
        assert_eq!(h.nvertices(), 3);
        assert_eq!(h.nnets(), 4);
        assert_eq!(h.pins_of(0), &[0, 2]);
        assert_eq!(h.pins_of(1), &[1]);
        assert_eq!(h.pins_of(2), &[0, 1]);
        assert_eq!(h.pins_of(3), &[2]);
        assert_eq!(h.npins(), 6);
    }

    #[test]
    fn row_net_is_column_net_of_transpose() {
        let m = sample();
        let h1 = row_net_model(&m, 1);
        let h2 = column_net_model(&m.transpose());
        assert_eq!(h1.nvertices(), h2.nvertices());
        assert_eq!(h1.nnets(), h2.nnets());
        for n in 0..h1.nnets() {
            assert_eq!(h1.pins_of(n), h2.pins_of(n));
        }
    }

    #[test]
    fn weighted_model_carries_weights() {
        let m = sample();
        let w = vec![5i64, 6, 7];
        let h = column_net_model_weighted(&m, &w, 1, 3);
        assert_eq!(h.vertex_weight(1, 0), 6);
        assert_eq!(h.net_cost(2), 3);
    }
}
