//! Cut-size metrics: connectivity−1, cut-net, and sum-of-external-degrees
//! (equations (7)–(9) of the paper).

use crate::Hypergraph;

/// The three standard cut-size metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CutMetric {
    /// `Σ (λ(j) − 1)` — equation (7).
    Con1,
    /// number of cut nets — equation (8).
    Cnet,
    /// `Σ_{λ(j)>1} λ(j)` — equation (9).
    Soed,
}

/// All three cut sizes of a partition, computed in one sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutSizes {
    /// Connectivity−1 metric (net costs applied).
    pub con1: i64,
    /// Cut-net metric (net costs applied).
    pub cnet: i64,
    /// Sum-of-external-degrees metric (net costs applied).
    pub soed: i64,
}

impl CutSizes {
    /// Selects one metric's value.
    pub fn get(&self, m: CutMetric) -> i64 {
        match m {
            CutMetric::Con1 => self.con1,
            CutMetric::Cnet => self.cnet,
            CutMetric::Soed => self.soed,
        }
    }
}

/// Computes the connectivity `λ(j)` of every net under `part` (entries
/// may be any small integers `< nparts`).
pub fn connectivities(h: &Hypergraph, part: &[usize], nparts: usize) -> Vec<usize> {
    assert_eq!(part.len(), h.nvertices());
    let mut lambda = vec![0usize; h.nnets()];
    let mut mark = vec![usize::MAX; nparts];
    for n in 0..h.nnets() {
        let mut l = 0usize;
        for &v in h.pins_of(n) {
            let p = part[v];
            debug_assert!(p < nparts);
            if mark[p] != n {
                mark[p] = n;
                l += 1;
            }
        }
        lambda[n] = l;
    }
    lambda
}

/// Computes all three cut sizes of a `nparts`-way partition.
pub fn cut_sizes(h: &Hypergraph, part: &[usize], nparts: usize) -> CutSizes {
    let lambda = connectivities(h, part, nparts);
    let mut con1 = 0i64;
    let mut cnet = 0i64;
    let mut soed = 0i64;
    for n in 0..h.nnets() {
        let l = lambda[n] as i64;
        let c = h.net_cost(n);
        if l > 1 {
            con1 += c * (l - 1);
            cnet += c;
            soed += c * l;
        }
    }
    CutSizes { con1, cnet, soed }
}

/// Part weights per constraint: `weights[p * ncon + c]`.
pub fn part_weights(h: &Hypergraph, part: &[usize], nparts: usize) -> Vec<i64> {
    let ncon = h.nconstraints();
    let mut w = vec![0i64; nparts * ncon];
    for v in 0..h.nvertices() {
        for c in 0..ncon {
            w[part[v] * ncon + c] += h.vertex_weight(v, c);
        }
    }
    w
}

/// Imbalance `(Wmax − Wavg)/Wavg` of constraint `c` (equation (6)).
pub fn imbalance(h: &Hypergraph, part: &[usize], nparts: usize, c: usize) -> f64 {
    let w = part_weights(h, part, nparts);
    let ncon = h.nconstraints();
    let total: i64 = (0..nparts).map(|p| w[p * ncon + c]).sum();
    if total == 0 {
        return 0.0;
    }
    let avg = total as f64 / nparts as f64;
    let max = (0..nparts).map(|p| w[p * ncon + c]).max().unwrap() as f64;
    (max - avg) / avg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // 6 vertices; nets: {0,1,2}, {2,3}, {3,4,5}, {0,5}
        Hypergraph::from_pin_lists(
            6,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]],
            vec![1; 6],
            1,
            vec![1; 4],
        )
    }

    #[test]
    fn metrics_on_a_bisection() {
        let h = sample();
        // Parts: {0,1,2} vs {3,4,5}.
        let part = vec![0, 0, 0, 1, 1, 1];
        let cs = cut_sizes(&h, &part, 2);
        // Net 0 uncut, net 1 cut (λ=2), net 2 uncut, net 3 cut (λ=2).
        assert_eq!(cs.cnet, 2);
        assert_eq!(cs.con1, 2);
        assert_eq!(cs.soed, 4);
        assert_eq!(cs.soed, cs.con1 + cs.cnet, "soed = con1 + cnet identity");
    }

    #[test]
    fn metrics_on_a_three_way_partition() {
        let h = sample();
        let part = vec![0, 0, 1, 1, 2, 2];
        let cs = cut_sizes(&h, &part, 3);
        // λ: net0 {0,1}→2, net1 {1}→1, net2 {1,2}→2, net3 {0,2}→2
        assert_eq!(cs.cnet, 3);
        assert_eq!(cs.con1, 3);
        assert_eq!(cs.soed, 6);
    }

    #[test]
    fn connectivities_counts_distinct_parts() {
        let h = sample();
        let lam = connectivities(&h, &[0, 1, 2, 0, 1, 2], 3);
        assert_eq!(lam[0], 3); // {0,1,2} spans all three parts
        assert_eq!(lam[1], 2); // {2,3} -> parts {2,0}
    }

    #[test]
    fn net_costs_scale_metrics() {
        let h = Hypergraph::from_pin_lists(2, &[vec![0, 1], vec![0]], vec![1, 1], 1, vec![7, 3]);
        let cs = cut_sizes(&h, &[0, 1], 2);
        assert_eq!(cs.cnet, 7);
        assert_eq!(cs.con1, 7);
        assert_eq!(cs.soed, 14);
    }

    #[test]
    fn uncut_partition_has_zero_metrics() {
        let h = sample();
        let cs = cut_sizes(&h, &[0; 6], 1);
        assert_eq!((cs.con1, cs.cnet, cs.soed), (0, 0, 0));
    }

    #[test]
    fn imbalance_and_part_weights() {
        let h = sample();
        let part = vec![0, 0, 0, 0, 1, 1];
        let w = part_weights(&h, &part, 2);
        assert_eq!(w, vec![4, 2]);
        let eps = imbalance(&h, &part, 2, 0);
        assert!((eps - (4.0 - 3.0) / 3.0).abs() < 1e-12);
    }
}
