//! Quasi-dense row removal (§V-B(c) of the paper).
//!
//! Before building the row-net hypergraph of the solution-vector pattern
//! `G`, rows that are empty or *quasi-dense* (density ≥ τ) are removed:
//! empty rows constrain nothing, and quasi-dense rows connect almost all
//! columns so they cannot be "uncut" anyway — dropping both shrinks the
//! hypergraph dramatically at almost no quality cost.

use sparsekit::Csr;

/// Outcome of the quasi-dense filter.
#[derive(Clone, Debug)]
pub struct SparsifyReport {
    /// Rows kept (indices into the original matrix).
    pub kept_rows: Vec<usize>,
    /// Number of empty rows removed.
    pub removed_empty: usize,
    /// Number of quasi-dense rows removed.
    pub removed_dense: usize,
}

/// Filters the rows of a pattern matrix `g`, removing empty rows and rows
/// with density `nnz(row)/ncols ≥ tau`.
pub fn filter_quasi_dense(g: &Csr, tau: f64) -> SparsifyReport {
    assert!(tau > 0.0, "tau must be positive");
    let ncols = g.ncols().max(1) as f64;
    let mut kept_rows = Vec::new();
    let mut removed_empty = 0usize;
    let mut removed_dense = 0usize;
    for i in 0..g.nrows() {
        let nnz = g.row_nnz(i);
        if nnz == 0 {
            removed_empty += 1;
        } else if nnz as f64 / ncols >= tau {
            removed_dense += 1;
        } else {
            kept_rows.push(i);
        }
    }
    SparsifyReport {
        kept_rows,
        removed_empty,
        removed_dense,
    }
}

/// Applies the filter and returns the row-submatrix of `g` on the kept
/// rows (all columns preserved).
pub fn sparsify(g: &Csr, tau: f64) -> (Csr, SparsifyReport) {
    let report = filter_quasi_dense(g, tau);
    let cols: Vec<usize> = (0..g.ncols()).collect();
    let sub = g.submatrix(&report.kept_rows, &cols);
    (sub, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Coo;

    fn pattern() -> Csr {
        // 4x4: row 0 empty, row 1 full (dense), rows 2-3 sparse.
        let mut c = Coo::new(4, 4);
        for j in 0..4 {
            c.push(1, j, 1.0);
        }
        c.push(2, 0, 1.0);
        c.push(3, 3, 1.0);
        c.to_csr()
    }

    #[test]
    fn removes_empty_and_dense_rows() {
        let g = pattern();
        let r = filter_quasi_dense(&g, 0.9);
        assert_eq!(r.removed_empty, 1);
        assert_eq!(r.removed_dense, 1);
        assert_eq!(r.kept_rows, vec![2, 3]);
    }

    #[test]
    fn tau_one_keeps_partial_rows() {
        let g = pattern();
        // Density exactly 1.0 is >= tau=1.0 → removed; others kept.
        let r = filter_quasi_dense(&g, 1.0);
        assert_eq!(r.removed_dense, 1);
        assert_eq!(r.kept_rows.len(), 2);
    }

    #[test]
    fn small_tau_removes_more() {
        let g = pattern();
        // tau=0.25: rows with >= 1 of 4 nnz are "dense".
        let r = filter_quasi_dense(&g, 0.25);
        assert_eq!(r.kept_rows.len(), 0);
        assert_eq!(r.removed_dense, 3);
    }

    #[test]
    fn sparsify_returns_submatrix() {
        let g = pattern();
        let (sub, r) = sparsify(&g, 0.9);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 4);
        assert_eq!(r.kept_rows, vec![2, 3]);
        assert_eq!(sub.get(0, 0), 1.0);
        assert_eq!(sub.get(1, 3), 1.0);
    }
}
