//! Heavy-connectivity matching coarsening for hypergraphs.

use crate::Hypergraph;

/// One hypergraph coarsening level.
#[derive(Clone, Debug)]
pub struct CoarseHg {
    /// The contracted hypergraph.
    pub hg: Hypergraph,
    /// `coarse_of[fine_v]` = coarse vertex id.
    pub coarse_of: Vec<usize>,
}

/// Nets larger than this are skipped when scoring matches (they carry
/// little locality signal and are expensive to traverse).
const MATCH_NET_CAP: usize = 64;

/// Heavy-connectivity matching: vertices are matched to the unmatched
/// neighbour with which they share the largest total net cost (nets
/// capped at [`MATCH_NET_CAP`] pins). Returns `mate` with
/// `mate[v] == v` for unmatched vertices.
pub fn heavy_connectivity_matching(h: &Hypergraph) -> Vec<usize> {
    let n = h.nvertices();
    let mut mate: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&v| h.vertex_degree(v));
    let mut score = vec![0i64; n];
    let mut touched: Vec<usize> = Vec::new();
    for &v in &order {
        if mate[v] != v {
            continue;
        }
        touched.clear();
        for &net in h.nets_of(v) {
            if h.net_size(net) > MATCH_NET_CAP {
                continue;
            }
            let c = h.net_cost(net);
            for &u in h.pins_of(net) {
                if u != v && mate[u] == u {
                    if score[u] == 0 {
                        touched.push(u);
                    }
                    score[u] += c;
                }
            }
        }
        let mut best = usize::MAX;
        let mut best_s = 0i64;
        for &u in &touched {
            if score[u] > best_s || (score[u] == best_s && u < best) {
                best = u;
                best_s = score[u];
            }
            score[u] = 0;
        }
        if best != usize::MAX {
            mate[v] = best;
            mate[best] = v;
        }
    }
    mate
}

/// Contracts a hypergraph along a matching. Coarse vertex weights are the
/// sums of their members' weights (all constraints); nets keep their
/// costs, with pins mapped to coarse ids and de-duplicated. Nets that
/// shrink to a single pin are dropped (they cannot be cut).
pub fn contract(h: &Hypergraph, mate: &[usize]) -> CoarseHg {
    let n = h.nvertices();
    let ncon = h.nconstraints();
    let mut coarse_of = vec![usize::MAX; n];
    let mut nc = 0usize;
    for v in 0..n {
        if coarse_of[v] != usize::MAX {
            continue;
        }
        coarse_of[v] = nc;
        if mate[v] != v {
            coarse_of[mate[v]] = nc;
        }
        nc += 1;
    }
    let mut vwgt = vec![0i64; nc * ncon];
    for v in 0..n {
        let cv = coarse_of[v];
        for c in 0..ncon {
            vwgt[cv * ncon + c] += h.vertex_weight(v, c);
        }
    }
    let mut pins: Vec<Vec<usize>> = Vec::new();
    let mut ncost: Vec<i64> = Vec::new();
    let mut mark = vec![usize::MAX; nc];
    for net in 0..h.nnets() {
        let mut p: Vec<usize> = Vec::with_capacity(h.net_size(net));
        for &v in h.pins_of(net) {
            let cv = coarse_of[v];
            if mark[cv] != net {
                mark[cv] = net;
                p.push(cv);
            }
        }
        if p.len() > 1 {
            p.sort_unstable();
            pins.push(p);
            ncost.push(h.net_cost(net));
        }
    }
    CoarseHg {
        hg: Hypergraph::from_pin_lists(nc, &pins, vwgt, ncon, ncost),
        coarse_of,
    }
}

/// Match + contract in one step.
pub fn coarsen_once(h: &Hypergraph) -> CoarseHg {
    let mate = heavy_connectivity_matching(h);
    contract(h, &mate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_hg(n: usize) -> Hypergraph {
        // Nets {i, i+1} — a path-like hypergraph.
        let pins: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        let ncost = vec![1i64; pins.len()];
        Hypergraph::from_pin_lists(n, &pins, vec![1; n], 1, ncost)
    }

    #[test]
    fn matching_is_involutive_and_local() {
        let h = chain_hg(10);
        let mate = heavy_connectivity_matching(&h);
        for v in 0..10 {
            assert_eq!(mate[mate[v]], v);
        }
        // Matched pairs must share a net.
        for v in 0..10 {
            if mate[v] != v {
                let shares = h
                    .nets_of(v)
                    .iter()
                    .any(|&n| h.pins_of(n).contains(&mate[v]));
                assert!(shares, "matched pair ({v},{}) shares no net", mate[v]);
            }
        }
    }

    #[test]
    fn contraction_preserves_weight_and_shrinks() {
        let h = chain_hg(12);
        let lvl = coarsen_once(&h);
        assert_eq!(lvl.hg.total_weights(), h.total_weights());
        assert!(lvl.hg.nvertices() < h.nvertices());
    }

    #[test]
    fn single_pin_nets_dropped() {
        // Net {0,1} contracts to a single coarse vertex -> net dropped.
        let h = Hypergraph::from_pin_lists(2, &[vec![0, 1]], vec![1, 1], 1, vec![1]);
        let lvl = contract(&h, &[1, 0]);
        assert_eq!(lvl.hg.nvertices(), 1);
        assert_eq!(lvl.hg.nnets(), 0);
    }

    #[test]
    fn multiconstraint_weights_summed() {
        let h = Hypergraph::from_pin_lists(2, &[vec![0, 1]], vec![1, 10, 2, 20], 2, vec![1]);
        let lvl = contract(&h, &[1, 0]);
        assert_eq!(lvl.hg.vertex_weights(0), &[3, 30]);
    }
}
