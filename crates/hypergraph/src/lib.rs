//! `hypergraph` — multilevel hypergraph partitioning and the paper's
//! Recursive Hypergraph Bisection (RHB) algorithm.
//!
//! This crate is the workspace's substitute for PaToH. It provides:
//!
//! * a compact pin-list hypergraph store with multi-weight vertices and
//!   costed nets ([`hg`]);
//! * column-net / row-net models of sparse matrices ([`models`]);
//! * the three cut-size metrics of the paper — `con1` (connectivity−1),
//!   `cnet` (cut-net) and `soed` (sum of external degrees) ([`metrics`]);
//! * multilevel bisection: heavy-connectivity coarsening, greedy initial
//!   partition, FM refinement with multi-constraint balance ([`coarsen`],
//!   [`fm`], [`bisect`]);
//! * generic recursive bisection with net splitting / net discarding and
//!   the paper's soed cost-halving trick ([`recursive`]);
//! * **RHB** with dynamic vertex weights `w1`, `w2` producing
//!   doubly-bordered partitions of symmetric matrices ([`rhb`]);
//! * quasi-dense row filtering for fast right-hand-side partitioning
//!   ([`sparsify`]).
//!
//! # Example
//!
//! ```
//! use hypergraph::{cut_sizes, Hypergraph};
//!
//! // 4 vertices, nets {0,1,2} and {2,3}; split {0,1} | {2,3}.
//! let h = Hypergraph::from_pin_lists(
//!     4,
//!     &[vec![0, 1, 2], vec![2, 3]],
//!     vec![1; 4],
//!     1,
//!     vec![1, 1],
//! );
//! let cs = cut_sizes(&h, &[0, 0, 1, 1], 2);
//! assert_eq!(cs.cnet, 1);          // only the first net is cut
//! assert_eq!(cs.soed, cs.con1 + cs.cnet);
//! ```

pub mod bisect;
pub mod coarsen;
pub mod fm;
pub mod hg;
pub mod metrics;
pub mod models;
pub mod recursive;
pub mod rhb;
pub mod sparsify;

pub use hg::Hypergraph;
pub use metrics::{cut_sizes, CutMetric, CutSizes};
pub use rhb::{rhb_partition, ConstraintMode, RhbConfig};
