//! Generic recursive bisection of a hypergraph into `k` parts.
//!
//! Net handling between levels uses **net splitting** (the con1-preserving
//! rule of Çatalyürek & Aykanat): a cut net survives in both sub-problems
//! restricted to the pins on each side. This driver also supports *exact*
//! part sizes (unit-count balance with ε = 0), which §IV-B of the paper
//! needs to give every column block exactly `B` columns.

use crate::bisect::{multilevel_bisect, repair_to_exact_count, BisectConfig};
use crate::Hypergraph;

/// Induces the sub-hypergraph on `vertices` (net splitting): every net is
/// restricted to its pins inside `vertices`; nets with fewer than two
/// remaining pins are dropped. Returns the sub-hypergraph and the map
/// `new vertex id → old vertex id`.
pub fn induce_subhypergraph(h: &Hypergraph, vertices: &[usize]) -> (Hypergraph, Vec<usize>) {
    let mut new_of = vec![usize::MAX; h.nvertices()];
    for (new, &old) in vertices.iter().enumerate() {
        new_of[old] = new;
    }
    let ncon = h.nconstraints();
    let mut vwgt = Vec::with_capacity(vertices.len() * ncon);
    for &old in vertices {
        vwgt.extend_from_slice(h.vertex_weights(old));
    }
    let mut pins: Vec<Vec<usize>> = Vec::new();
    let mut ncost: Vec<i64> = Vec::new();
    for net in 0..h.nnets() {
        let p: Vec<usize> = h
            .pins_of(net)
            .iter()
            .copied()
            .filter_map(|v| {
                let nv = new_of[v];
                (nv != usize::MAX).then_some(nv)
            })
            .collect();
        if p.len() > 1 {
            pins.push(p);
            ncost.push(h.net_cost(net));
        }
    }
    (
        Hypergraph::from_pin_lists(vertices.len(), &pins, vwgt, ncon, ncost),
        vertices.to_vec(),
    )
}

/// Recursively partitions `h` into parts of *exactly* the given sizes
/// (which must sum to the vertex count). Minimises the con1 metric via
/// net splitting. Returns `part[v] ∈ 0..sizes.len()`.
pub fn recursive_partition_exact(
    h: &Hypergraph,
    sizes: &[usize],
    cfg: &BisectConfig,
) -> Vec<usize> {
    let all: Vec<usize> = (0..h.nvertices()).collect();
    recursive_partition_exact_seeded(h, sizes, cfg, &all)
}

/// Like [`recursive_partition_exact`], but seeded: `seed_order` lists all
/// vertices in a locality-preserving sequence (e.g. the §IV-A postorder
/// key order), and each bisection starts from the contiguous split of
/// that sequence before FM refinement. The result is therefore never
/// meaningfully worse than the contiguous blocking of `seed_order`, and
/// usually better — mirroring how a production partitioner (PaToH) beats
/// the postorder blocking in the paper's Fig. 4.
pub fn recursive_partition_exact_seeded(
    h: &Hypergraph,
    sizes: &[usize],
    cfg: &BisectConfig,
    seed_order: &[usize],
) -> Vec<usize> {
    let total: usize = sizes.iter().sum();
    assert_eq!(
        total,
        h.nvertices(),
        "part sizes must sum to the vertex count"
    );
    assert_eq!(
        seed_order.len(),
        h.nvertices(),
        "seed order must cover all vertices"
    );
    let mut part = vec![0usize; h.nvertices()];
    recurse(h, seed_order, sizes, 0, cfg, &mut part);
    part
}

fn recurse(
    h: &Hypergraph,
    vertices: &[usize],
    sizes: &[usize],
    first_part: usize,
    cfg: &BisectConfig,
    part: &mut [usize],
) {
    if sizes.len() == 1 {
        for &v in vertices {
            part[v] = first_part;
        }
        return;
    }
    let half = sizes.len() / 2;
    let target0: usize = sizes[..half].iter().sum();
    let (sub, map) = induce_subhypergraph(h, vertices);
    // Candidate A: multilevel bisection repaired to the exact size.
    let mut ml = multilevel_bisect(&sub, cfg);
    repair_to_exact_count(&sub, &mut ml, target0);
    // Candidate B: the contiguous split of the seed order, FM-refined
    // under a tight balance bound, then repaired.
    let seed_side: Vec<u8> = (0..sub.nvertices())
        .map(|v| if v < target0 { 0u8 } else { 1u8 })
        .collect();
    let mut seeded = crate::fm::HBisection::recompute(&sub, seed_side);
    let tight = crate::fm::HFmLimits::from_eps(&sub, 0.02);
    crate::fm::refine(&sub, &mut seeded, &tight);
    repair_to_exact_count(&sub, &mut seeded, target0);
    let bis = if seeded.cut <= ml.cut { seeded } else { ml };
    // Split, preserving the seed order inside each side so deeper levels
    // keep their locality seed.
    let mut side0 = Vec::with_capacity(target0);
    let mut side1 = Vec::with_capacity(vertices.len() - target0);
    for (local, &global) in map.iter().enumerate() {
        if bis.side[local] == 0 {
            side0.push(global);
        } else {
            side1.push(global);
        }
    }
    debug_assert_eq!(side0.len(), target0);
    recurse(h, &side0, &sizes[..half], first_part, cfg, part);
    recurse(h, &side1, &sizes[half..], first_part + half, cfg, part);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::cut_sizes;

    fn chain(n: usize) -> Hypergraph {
        let pins: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        let ncost = vec![1i64; pins.len()];
        Hypergraph::from_pin_lists(n, &pins, vec![1; n], 1, ncost)
    }

    #[test]
    fn induced_subhypergraph_splits_nets() {
        let h = chain(6);
        let (sub, map) = induce_subhypergraph(&h, &[0, 1, 2]);
        assert_eq!(sub.nvertices(), 3);
        // Nets {0,1},{1,2} survive; {2,3} loses a pin and is dropped.
        assert_eq!(sub.nnets(), 2);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn exact_partition_respects_sizes() {
        let h = chain(24);
        let sizes = [6usize, 6, 6, 6];
        let part = recursive_partition_exact(&h, &sizes, &BisectConfig::default());
        let mut counts = [0usize; 4];
        for &p in &part {
            counts[p] += 1;
        }
        assert_eq!(counts, sizes);
    }

    #[test]
    fn exact_partition_with_uneven_sizes() {
        let h = chain(10);
        let sizes = [3usize, 3, 4];
        let part = recursive_partition_exact(&h, &sizes, &BisectConfig::default());
        let mut counts = [0usize; 3];
        for &p in &part {
            counts[p] += 1;
        }
        assert_eq!(counts, sizes);
    }

    #[test]
    fn chain_partition_has_low_con1() {
        let h = chain(32);
        let sizes = [8usize; 4];
        let part = recursive_partition_exact(&h, &sizes, &BisectConfig::default());
        let cs = cut_sizes(&h, &part, 4);
        // A contiguous split cuts 3 pair-nets (con1 = 3); allow slack.
        assert!(cs.con1 <= 8, "con1 {} too large", cs.con1);
    }
}
