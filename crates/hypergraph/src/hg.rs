//! The hypergraph store.

/// A hypergraph `H = (V, N)` with multi-weight vertices and costed nets.
///
/// Pins are stored twice for O(1) traversal in both directions:
/// `vnets[vptr[v]..vptr[v+1]]` lists the nets of vertex `v`, and
/// `npins[nptr[n]..nptr[n+1]]` lists the vertices of net `n`.
///
/// Vertices carry `ncon` weights each (multi-constraint partitioning);
/// weight `c` of vertex `v` is `vwgt[v * ncon + c]`.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    ncon: usize,
    vptr: Vec<usize>,
    vnets: Vec<usize>,
    nptr: Vec<usize>,
    npins: Vec<usize>,
    vwgt: Vec<i64>,
    ncost: Vec<i64>,
}

impl Hypergraph {
    /// Builds a hypergraph from net pin lists.
    ///
    /// `pins[n]` is the vertex list of net `n` (duplicate-free). `vwgt` is
    /// row-major `nvert × ncon`. `ncost[n]` is the cost of net `n`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent dimensions or out-of-range pins.
    pub fn from_pin_lists(
        nvert: usize,
        pins: &[Vec<usize>],
        vwgt: Vec<i64>,
        ncon: usize,
        ncost: Vec<i64>,
    ) -> Self {
        assert!(ncon >= 1, "at least one constraint required");
        assert_eq!(
            vwgt.len(),
            nvert * ncon,
            "vertex weight array size mismatch"
        );
        assert_eq!(ncost.len(), pins.len(), "net cost array size mismatch");
        let nnets = pins.len();
        let mut nptr = vec![0usize; nnets + 1];
        let mut npins = Vec::new();
        let mut vdeg = vec![0usize; nvert];
        for (n, p) in pins.iter().enumerate() {
            for &v in p {
                assert!(v < nvert, "pin {v} out of range in net {n}");
                vdeg[v] += 1;
            }
            npins.extend_from_slice(p);
            nptr[n + 1] = npins.len();
        }
        let mut vptr = vec![0usize; nvert + 1];
        for v in 0..nvert {
            vptr[v + 1] = vptr[v] + vdeg[v];
        }
        let mut vnets = vec![0usize; npins.len()];
        let mut next = vptr.clone();
        for n in 0..nnets {
            for &v in &npins[nptr[n]..nptr[n + 1]] {
                vnets[next[v]] = n;
                next[v] += 1;
            }
        }
        Hypergraph {
            ncon,
            vptr,
            vnets,
            nptr,
            npins,
            vwgt,
            ncost,
        }
    }

    /// Number of vertices.
    pub fn nvertices(&self) -> usize {
        self.vptr.len() - 1
    }

    /// Number of nets.
    pub fn nnets(&self) -> usize {
        self.nptr.len() - 1
    }

    /// Number of pins.
    pub fn npins(&self) -> usize {
        self.npins.len()
    }

    /// Number of balance constraints (weights per vertex).
    pub fn nconstraints(&self) -> usize {
        self.ncon
    }

    /// Nets incident to vertex `v`.
    pub fn nets_of(&self, v: usize) -> &[usize] {
        &self.vnets[self.vptr[v]..self.vptr[v + 1]]
    }

    /// Pins (vertices) of net `n`.
    pub fn pins_of(&self, n: usize) -> &[usize] {
        &self.npins[self.nptr[n]..self.nptr[n + 1]]
    }

    /// Size (pin count) of net `n`.
    pub fn net_size(&self, n: usize) -> usize {
        self.nptr[n + 1] - self.nptr[n]
    }

    /// Cost of net `n`.
    pub fn net_cost(&self, n: usize) -> i64 {
        self.ncost[n]
    }

    /// Weight `c` of vertex `v`.
    pub fn vertex_weight(&self, v: usize, c: usize) -> i64 {
        self.vwgt[v * self.ncon + c]
    }

    /// All weights of vertex `v`.
    pub fn vertex_weights(&self, v: usize) -> &[i64] {
        &self.vwgt[v * self.ncon..(v + 1) * self.ncon]
    }

    /// Total weight per constraint.
    pub fn total_weights(&self) -> Vec<i64> {
        let mut t = vec![0i64; self.ncon];
        for v in 0..self.nvertices() {
            for c in 0..self.ncon {
                t[c] += self.vertex_weight(v, c);
            }
        }
        t
    }

    /// Degree (number of incident nets) of vertex `v`.
    pub fn vertex_degree(&self, v: usize) -> usize {
        self.vptr[v + 1] - self.vptr[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // 4 vertices, 3 nets: {0,1}, {1,2,3}, {0,3}
        Hypergraph::from_pin_lists(
            4,
            &[vec![0, 1], vec![1, 2, 3], vec![0, 3]],
            vec![1, 2, 3, 4],
            1,
            vec![1, 1, 1],
        )
    }

    #[test]
    fn dual_views_are_consistent() {
        let h = sample();
        assert_eq!(h.nvertices(), 4);
        assert_eq!(h.nnets(), 3);
        assert_eq!(h.npins(), 7);
        // Vertex -> nets inverted correctly.
        assert_eq!(h.nets_of(0), &[0, 2]);
        assert_eq!(h.nets_of(1), &[0, 1]);
        assert_eq!(h.nets_of(2), &[1]);
        assert_eq!(h.nets_of(3), &[1, 2]);
        // Cross-check: v appears in pins_of(n) iff n appears in nets_of(v).
        for v in 0..4 {
            for &n in h.nets_of(v) {
                assert!(h.pins_of(n).contains(&v));
            }
        }
    }

    #[test]
    fn weights_and_costs() {
        let h = sample();
        assert_eq!(h.vertex_weight(2, 0), 3);
        assert_eq!(h.total_weights(), vec![10]);
        assert_eq!(h.net_cost(1), 1);
        assert_eq!(h.net_size(1), 3);
        assert_eq!(h.vertex_degree(3), 2);
    }

    #[test]
    fn multiconstraint_weights() {
        let h = Hypergraph::from_pin_lists(2, &[vec![0, 1]], vec![1, 10, 2, 20], 2, vec![5]);
        assert_eq!(h.vertex_weights(0), &[1, 10]);
        assert_eq!(h.vertex_weights(1), &[2, 20]);
        assert_eq!(h.total_weights(), vec![3, 30]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_pin() {
        Hypergraph::from_pin_lists(2, &[vec![0, 2]], vec![1, 1], 1, vec![1]);
    }

    #[test]
    fn empty_net_is_allowed() {
        let h = Hypergraph::from_pin_lists(2, &[vec![], vec![0]], vec![1, 1], 1, vec![1, 1]);
        assert_eq!(h.net_size(0), 0);
        assert_eq!(h.net_size(1), 1);
    }
}
