//! Multilevel hypergraph bisection.

use crate::coarsen::coarsen_once;
use crate::fm::{refine, HBisection, HFmLimits};
use crate::Hypergraph;

/// Configuration for a multilevel bisection.
#[derive(Clone, Copy, Debug)]
pub struct BisectConfig {
    /// Allowed imbalance per constraint (equation (6)).
    pub eps: f64,
    /// Coarsening stops at this many vertices.
    pub coarse_target: usize,
}

impl Default for BisectConfig {
    fn default() -> Self {
        BisectConfig {
            eps: 0.05,
            coarse_target: 128,
        }
    }
}

/// Greedy growing initial bisection: vertices are absorbed into side 0 in
/// a net-connected BFS order until side 0 holds about half of the
/// first-constraint weight.
pub fn grow_bisection(h: &Hypergraph) -> HBisection {
    let n = h.nvertices();
    let total0: i64 = h.total_weights()[0];
    let target0 = total0 / 2;
    let mut side = vec![1u8; n];
    let mut w0 = 0i64;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut next_seed = 0usize;
    // Start from a low-degree vertex (periphery-ish).
    let start = (0..n).min_by_key(|&v| (h.vertex_degree(v), v)).unwrap_or(0);
    visited[start] = true;
    queue.push_back(start);
    while w0 < target0 {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                while next_seed < n && visited[next_seed] {
                    next_seed += 1;
                }
                if next_seed == n {
                    break;
                }
                visited[next_seed] = true;
                next_seed
            }
        };
        let wv = h.vertex_weight(v, 0);
        if w0 + wv - target0 > target0 - w0 {
            break;
        }
        side[v] = 0;
        w0 += wv;
        for &net in h.nets_of(v) {
            if h.net_size(net) > 256 {
                continue; // huge nets give no locality signal
            }
            for &u in h.pins_of(net) {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    HBisection::recompute(h, side)
}

/// Multilevel bisection: coarsen to `cfg.coarse_target` vertices, grow an
/// initial bisection, refine with FM while projecting back up.
pub fn multilevel_bisect(h: &Hypergraph, cfg: &BisectConfig) -> HBisection {
    let limits = HFmLimits::from_eps(h, cfg.eps);
    if h.nvertices() <= cfg.coarse_target {
        let mut b = grow_bisection(h);
        refine(h, &mut b, &limits);
        return b;
    }
    let lvl = coarsen_once(h);
    if lvl.hg.nvertices() as f64 > 0.95 * h.nvertices() as f64 {
        let mut b = grow_bisection(h);
        refine(h, &mut b, &limits);
        return b;
    }
    let coarse = multilevel_bisect(&lvl.hg, cfg);
    let side: Vec<u8> = (0..h.nvertices())
        .map(|v| coarse.side[lvl.coarse_of[v]])
        .collect();
    let mut b = HBisection::recompute(h, side);
    refine(h, &mut b, &limits);
    b
}

/// Forces side 0 of a bisection to contain exactly `target0` vertices
/// (unit-count semantics; used by the §IV-B right-hand-side partitioning
/// where every part must have exactly `B` columns, ε = 0).
///
/// Vertices are shifted from the overfull side picking, at each step, the
/// vertex whose move increases the cut the least.
pub fn repair_to_exact_count(h: &Hypergraph, bis: &mut HBisection, target0: usize) {
    let n = h.nvertices();
    loop {
        let count0 = bis.side.iter().filter(|&&s| s == 0).count();
        if count0 == target0 {
            break;
        }
        let from: u8 = if count0 > target0 { 0 } else { 1 };
        // Pin counts per net for gain evaluation.
        let mut cnt = vec![[0usize; 2]; h.nnets()];
        for net in 0..h.nnets() {
            for &v in h.pins_of(net) {
                cnt[net][bis.side[v] as usize] += 1;
            }
        }
        let mut best_v = usize::MAX;
        let mut best_gain = i64::MIN;
        for v in 0..n {
            if bis.side[v] != from {
                continue;
            }
            let s = from as usize;
            let mut g = 0i64;
            for &net in h.nets_of(v) {
                let c = h.net_cost(net);
                if cnt[net][s] == 1 {
                    g += c;
                }
                if cnt[net][1 - s] == 0 {
                    g -= c;
                }
            }
            if g > best_gain || (g == best_gain && v < best_v) {
                best_gain = g;
                best_v = v;
            }
        }
        if best_v == usize::MAX {
            break; // nothing movable (side empty)
        }
        bis.side[best_v] = 1 - from;
        *bis = HBisection::recompute(h, std::mem::take(&mut bis.side));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D chain of `n` vertices with pair nets — the optimal bisection
    /// cuts exactly one net.
    fn chain(n: usize) -> Hypergraph {
        let pins: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        let ncost = vec![1i64; pins.len()];
        Hypergraph::from_pin_lists(n, &pins, vec![1; n], 1, ncost)
    }

    #[test]
    fn multilevel_bisects_chain_cheaply() {
        let h = chain(200);
        let b = multilevel_bisect(&h, &BisectConfig::default());
        assert!(b.cut <= 4, "chain cut should be tiny, got {}", b.cut);
        assert!(b.imbalance(0) <= 0.10, "imbalance {}", b.imbalance(0));
    }

    #[test]
    fn small_graph_direct_bisection() {
        let h = chain(10);
        let b = multilevel_bisect(&h, &BisectConfig::default());
        assert_eq!(b.weights[0][0] + b.weights[1][0], 10);
        assert!(b.cut >= 1);
    }

    #[test]
    fn repair_reaches_exact_count() {
        let h = chain(20);
        let mut b = multilevel_bisect(&h, &BisectConfig::default());
        repair_to_exact_count(&h, &mut b, 7);
        assert_eq!(b.side.iter().filter(|&&s| s == 0).count(), 7);
        let fresh = HBisection::recompute(&h, b.side.clone());
        assert_eq!(fresh.cut, b.cut);
    }

    #[test]
    fn repair_with_exact_half() {
        let h = chain(16);
        let mut b = multilevel_bisect(&h, &BisectConfig::default());
        repair_to_exact_count(&h, &mut b, 8);
        assert_eq!(b.side.iter().filter(|&&s| s == 0).count(), 8);
        // Chain split into two halves of 8 — best cut is 1.
        assert!(b.cut <= 3);
    }
}
