//! Recursive Hypergraph Bisection (RHB) — Algorithm Fig. 2 of the paper.
//!
//! RHB permutes a symmetric matrix `A` into doubly-bordered block-diagonal
//! (DBBD) form by recursively bisecting the **rows** of a structural
//! factor `M` (with `str(A) = str(MᵀM)`) via its column-net hypergraph.
//! The key departures from standard recursive hypergraph partitioning:
//!
//! * **dynamic vertex weights** recomputed at every bisection step from
//!   the previous bisection's outcome: `w1(i) = nnz(M_ℓ(i,:))` (predicts
//!   subdomain nonzeros: `Σ w1(i)²` bounds `nnz(D_ℓ)`) and, in
//!   multi-constraint mode, `w2(i) = nnz(M(i,:))` (predicts interface
//!   nonzeros via `Σ (w2² − w1²)`);
//! * per-metric net handling between levels: **net splitting** for con1,
//!   **net discarding** for cnet, and splitting with the **cost-halving
//!   trick** for soed (nets start at cost 2; a cut net's copies continue
//!   at cost ⌈2/2⌉ = 1, so summing costs of cut nets yields the soed
//!   value).
//!
//! The structural factor `M` is configurable ([`StructuralFactor`]):
//! `M = A` or `M = tril(A)`; both satisfy `str(A) ⊆ str(MᵀM)` for
//! full-diagonal matrices, so a DBBD form of `MᵀM` is one of `A`. See
//! DESIGN.md §3 for the substitution note.

use graphpart::{
    magnitude_weight, median_offdiag_magnitude, DbbdPartition, WeightScheme, SEPARATOR,
};
use sparsekit::Csr;

use crate::bisect::{multilevel_bisect, BisectConfig};
use crate::metrics::CutMetric;
use crate::Hypergraph;

/// The structural factorisation `str(A) = str(MᵀM)` used to build the
/// column-net hypergraph (§III-C, after Çatalyürek–Aykanat–Kayaaslan).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StructuralFactor {
    /// `M = A` — always valid for matrices with full nonzero diagonals,
    /// but yields "wide" (two-layer) separators: a column is cut as soon
    /// as *any* pair of its pins straddles the row bisection.
    Identity,
    /// `M = tril(A)` (lower triangle incl. diagonal) — also satisfies
    /// `str(A) ⊆ str(MᵀM)` for full-diagonal `A` since
    /// `str(MᵀM) ⊇ str(DᵀL) ∪ str(LᵀD) = str(A)`. Columns have about
    /// half the pins, producing thinner separators than `M = A`.
    LowerTriangular,
    /// The **edge clique cover**: one 2-pin row per off-diagonal edge of
    /// the symmetrised matrix (plus one singleton row per vertex for the
    /// diagonal). `str(MᵀM)` is then *exactly* `str(A)`, and partitioning
    /// the rows of `M` is the classical hypergraph formulation of the
    /// **vertex-separator** problem: a column (vertex) is cut iff its
    /// incident edges straddle the bisection. This is the closest cheap
    /// stand-in for the clique-cover structural factorisation of [7] and
    /// produces the thinnest separators; the hypergraph is larger
    /// (one vertex per matrix edge).
    EdgeCover,
}

/// Which balance constraints drive each bisection (§III-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintMode {
    /// Static unit weights at every level (ablation baseline — this is
    /// what a standard hypergraph partitioner would do).
    Unit,
    /// Single constraint: dynamic `w1(i) = nnz(M_ℓ(i,:))`.
    Single,
    /// Multi-constraint: dynamic `[w1(i), w2(i)]`.
    Multi,
}

/// RHB configuration.
#[derive(Clone, Copy, Debug)]
pub struct RhbConfig {
    /// Cut metric (drives inter-level net handling).
    pub metric: CutMetric,
    /// Constraint mode (§III-C weighting schemes).
    pub constraint: ConstraintMode,
    /// Per-bisection imbalance tolerance ε.
    pub eps: f64,
    /// Multilevel bisection parameters.
    pub coarse_target: usize,
    /// Structural factorisation choice.
    pub factor: StructuralFactor,
    /// Use unit weights at the first-level bisection (the paper's
    /// literal Fig.-2 behaviour). `false` applies the dynamic `w1`/`w2`
    /// weights from the very first bisection (`M_ℓ = M` there), which
    /// repairs cross-half nnz imbalance that deeper levels cannot fix on
    /// graded meshes; the ablation harness compares both.
    pub unit_first_level: bool,
    /// Net-cost weighting: under [`WeightScheme::ValueScaled`] each
    /// column net's initial cost is scaled by the magnitude of its
    /// largest coefficient, so cutting a strong coupling (promoting its
    /// vertex to the separator and exposing it to dropping) costs more
    /// than cutting a weak one.
    pub weights: WeightScheme,
}

impl Default for RhbConfig {
    fn default() -> Self {
        RhbConfig {
            metric: CutMetric::Soed,
            constraint: ConstraintMode::Single,
            eps: 0.04,
            coarse_target: 128,
            factor: StructuralFactor::LowerTriangular,
            unit_first_level: false,
            weights: WeightScheme::Unit,
        }
    }
}

/// Extracts the structural factor `M` from the symmetrised matrix.
fn structural_factor(a: &Csr, f: StructuralFactor) -> Csr {
    match f {
        StructuralFactor::Identity => a.clone(),
        StructuralFactor::LowerTriangular => {
            let n = a.nrows();
            let mut indptr = vec![0usize; n + 1];
            let mut indices = Vec::with_capacity(a.nnz() / 2 + n);
            let mut values = Vec::with_capacity(a.nnz() / 2 + n);
            for i in 0..n {
                let mut has_diag = false;
                for (j, v) in a.row_iter(i) {
                    if j < i {
                        indices.push(j);
                        values.push(v);
                    } else if j == i {
                        has_diag = true;
                        indices.push(j);
                        values.push(v);
                    }
                }
                // Structural validity needs the diagonal.
                if !has_diag {
                    indices.push(i);
                    values.push(0.0);
                }
                indptr[i + 1] = indices.len();
            }
            Csr::from_parts(n, n, indptr, indices, values)
        }
        StructuralFactor::EdgeCover => {
            let n = a.nrows();
            // One 2-pin row per upper-triangular edge {i,j}, i < j.
            // (No singleton diagonal rows: a 1-pin row placed on the
            // "wrong" side would spuriously cut its column; columns with
            // no edges are isolated vertices, parked in part 0 by the
            // final classification.)
            let mut rows_est = 0usize;
            for i in 0..n {
                for &j in a.row_indices(i) {
                    if j > i {
                        rows_est += 1;
                    }
                }
            }
            let mut indptr = Vec::with_capacity(rows_est + 1);
            let mut indices = Vec::with_capacity(2 * rows_est);
            let mut values = Vec::with_capacity(2 * rows_est);
            indptr.push(0);
            for i in 0..n {
                for (j, v) in a.row_iter(i) {
                    if j > i {
                        indices.push(i);
                        values.push(v);
                        indices.push(j);
                        values.push(v);
                        indptr.push(indices.len());
                    }
                }
            }
            let nrows = indptr.len() - 1;
            Csr::from_parts(nrows, n, indptr, indices, values)
        }
    }
}

/// Partitions a square matrix into a k-way DBBD form with RHB.
///
/// `m` is the structural factor (we pass the symmetrised matrix itself;
/// see module docs). `k` must be a power of two. The returned partition
/// assigns every **column** of `m` (equivalently every vertex of `A`) to
/// a subdomain `0..k` or to the separator.
pub fn rhb_partition(m: &Csr, k: usize, cfg: &RhbConfig) -> DbbdPartition {
    assert!(
        k.is_power_of_two() && k >= 1,
        "RHB requires a power-of-two part count"
    );
    assert_eq!(
        m.nrows(),
        m.ncols(),
        "RHB expects the (symmetrised) square matrix"
    );
    let ncols = m.ncols();
    // Per-column magnitude scaling computed on the *original* matrix
    // (structural factors may duplicate or zero values).
    let col_scale: Vec<i64> = match cfg.weights {
        WeightScheme::Unit => vec![1i64; ncols],
        WeightScheme::ValueScaled => {
            let ref_mag = median_offdiag_magnitude(m);
            let mut max_abs = vec![0.0f64; ncols];
            for i in 0..m.nrows() {
                for (j, v) in m.row_iter(i) {
                    if j != i {
                        max_abs[j] = max_abs[j].max(v.abs());
                    }
                }
            }
            max_abs
                .iter()
                .map(|&v| magnitude_weight(v, ref_mag))
                .collect()
        }
    };
    let mfac = structural_factor(m, cfg.factor);
    let m = &mfac;
    let nrows = m.nrows();
    let initial_cost: i64 = match cfg.metric {
        CutMetric::Soed => 2,
        _ => 1,
    };
    // Global row nnz for the w2 constraint.
    let global_row_nnz: Vec<i64> = (0..nrows).map(|i| m.row_nnz(i) as i64).collect();
    let mut row_part = vec![0usize; nrows];
    let rows: Vec<usize> = (0..nrows).collect();
    let cols: Vec<(usize, i64)> = (0..ncols)
        .map(|j| (j, initial_cost * col_scale[j]))
        .collect();
    let mut state = RhbState {
        m,
        cfg,
        global_row_nnz: &global_row_nnz,
        row_part: &mut row_part,
    };
    rhb_recurse(&mut state, rows, cols, k, 0, cfg.unit_first_level);
    // Column classification from the final row partition: a column whose
    // pins touch a single part is interior to it; otherwise it joins the
    // separator (its net is cut, λ(j) > 1).
    let mt = m.transpose();
    let mut part_of = vec![SEPARATOR; ncols];
    for j in 0..ncols {
        let mut owner: Option<usize> = None;
        let mut cut = false;
        for &i in mt.row_indices(j) {
            let p = row_part[i];
            match owner {
                None => owner = Some(p),
                Some(o) if o != p => {
                    cut = true;
                    break;
                }
                _ => {}
            }
        }
        part_of[j] = match (cut, owner) {
            (false, Some(o)) => o,
            (true, _) => SEPARATOR,
            // Empty column (no pins): park it in part 0.
            (false, None) => 0,
        };
    }
    DbbdPartition { k, part_of }
}

struct RhbState<'a> {
    m: &'a Csr,
    cfg: &'a RhbConfig,
    global_row_nnz: &'a [i64],
    row_part: &'a mut [usize],
}

fn rhb_recurse(
    st: &mut RhbState<'_>,
    rows: Vec<usize>,
    cols: Vec<(usize, i64)>,
    k: usize,
    first_part: usize,
    first_bisection: bool,
) {
    if k == 1 || rows.is_empty() {
        for &r in &rows {
            st.row_part[r] = first_part;
        }
        return;
    }
    // Build the submatrix pattern A(R, C) and its column-net hypergraph.
    let col_ids: Vec<usize> = cols.iter().map(|&(j, _)| j).collect();
    let sub = st.m.submatrix(&rows, &col_ids);
    let ncon;
    let vwgt: Vec<i64>;
    if first_bisection || st.cfg.constraint == ConstraintMode::Unit {
        // "Since we do not have any information at the first-level
        // bisection, a unit weight is assigned to each vertex."
        ncon = 1;
        vwgt = vec![1i64; rows.len()];
    } else {
        match st.cfg.constraint {
            ConstraintMode::Single => {
                ncon = 1;
                vwgt = (0..rows.len()).map(|i| 1 + sub.row_nnz(i) as i64).collect();
            }
            ConstraintMode::Multi => {
                ncon = 2;
                let mut w = Vec::with_capacity(rows.len() * 2);
                for (i, &gr) in rows.iter().enumerate() {
                    w.push(1 + sub.row_nnz(i) as i64); // w1
                    w.push(1 + st.global_row_nnz[gr]); // w2
                }
                vwgt = w;
            }
            ConstraintMode::Unit => unreachable!(),
        }
    }
    let pins: Vec<Vec<usize>> = {
        let mut p: Vec<Vec<usize>> = vec![Vec::new(); col_ids.len()];
        for i in 0..sub.nrows() {
            for &j in sub.row_indices(i) {
                p[j].push(i);
            }
        }
        p
    };
    let ncost: Vec<i64> = cols.iter().map(|&(_, c)| c).collect();
    let h = Hypergraph::from_pin_lists(rows.len(), &pins, vwgt, ncon, ncost);
    let bcfg = BisectConfig {
        eps: st.cfg.eps,
        coarse_target: st.cfg.coarse_target,
    };
    let bis = multilevel_bisect(&h, &bcfg);
    // Partition rows.
    let mut rows0 = Vec::new();
    let mut rows1 = Vec::new();
    for (local, &global) in rows.iter().enumerate() {
        if bis.side[local] == 0 {
            rows0.push(global);
        } else {
            rows1.push(global);
        }
    }
    // Create the two column sets: net splitting or net discarding (Fig. 2
    // line 7), with the soed cost-halving rule.
    let mut cols0 = Vec::new();
    let mut cols1 = Vec::new();
    for (local, &(global, cost)) in cols.iter().enumerate() {
        let p = h.pins_of(local);
        let mut on0 = false;
        let mut on1 = false;
        for &v in p {
            if bis.side[v] == 0 {
                on0 = true;
            } else {
                on1 = true;
            }
            if on0 && on1 {
                break;
            }
        }
        match (on0, on1) {
            (true, false) => cols0.push((global, cost)),
            (false, true) => cols1.push((global, cost)),
            (false, false) => {} // empty net: drop
            (true, true) => match st.cfg.metric {
                CutMetric::Cnet => {} // net discarding
                CutMetric::Con1 => {
                    // Net splitting, unit costs.
                    cols0.push((global, cost));
                    cols1.push((global, cost));
                }
                CutMetric::Soed => {
                    // Cost-halving: 2 → 1 on first cut, stays 1 after.
                    let half = (cost + 1) / 2;
                    cols0.push((global, half));
                    cols1.push((global, half));
                }
            },
        }
    }
    // Degenerate bisection: fall back to an even index split so the
    // recursion always terminates.
    if rows0.is_empty() || rows1.is_empty() {
        let mut all = rows;
        let mid = all.len() / 2;
        let right = all.split_off(mid);
        rhb_recurse(st, all, cols.clone(), k / 2, first_part, false);
        rhb_recurse(st, right, cols, k / 2, first_part + k / 2, false);
        return;
    }
    rhb_recurse(st, rows0, cols0, k / 2, first_part, false);
    rhb_recurse(st, rows1, cols1, k / 2, first_part + k / 2, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphpart::SEPARATOR;
    use sparsekit::Coo;

    fn grid_matrix(nx: usize, ny: usize) -> Csr {
        let idx = |i: usize, j: usize| i * ny + j;
        let mut c = Coo::new(nx * ny, nx * ny);
        for i in 0..nx {
            for j in 0..ny {
                c.push(idx(i, j), idx(i, j), 4.0);
                if i + 1 < nx {
                    c.push_sym(idx(i, j), idx(i + 1, j), -1.0);
                }
                if j + 1 < ny {
                    c.push_sym(idx(i, j), idx(i, j + 1), -1.0);
                }
            }
        }
        c.to_csr()
    }

    fn check_dbbd_valid(a: &Csr, p: &DbbdPartition) {
        // No entry of A may connect two distinct subdomains directly.
        for i in 0..a.nrows() {
            let pi = p.part_of[i];
            if pi == SEPARATOR {
                continue;
            }
            for &j in a.row_indices(i) {
                let pj = p.part_of[j];
                assert!(
                    pj == SEPARATOR || pj == pi,
                    "entry ({i},{j}) couples subdomains {pi} and {pj}"
                );
            }
        }
    }

    #[test]
    fn rhb_produces_valid_dbbd_soed() {
        let a = grid_matrix(12, 12);
        let p = rhb_partition(&a, 4, &RhbConfig::default());
        assert_eq!(p.k, 4);
        check_dbbd_valid(&a, &p);
        let sizes = p.subdomain_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty subdomain: {sizes:?}");
        assert!(p.separator_size() < 144 / 3, "separator too large");
    }

    #[test]
    fn rhb_cnet_and_con1_also_valid() {
        let a = grid_matrix(10, 10);
        for metric in [CutMetric::Cnet, CutMetric::Con1] {
            let cfg = RhbConfig {
                metric,
                ..Default::default()
            };
            let p = rhb_partition(&a, 2, &cfg);
            check_dbbd_valid(&a, &p);
        }
    }

    #[test]
    fn rhb_multiconstraint_valid() {
        let a = grid_matrix(12, 12);
        let cfg = RhbConfig {
            constraint: ConstraintMode::Multi,
            ..Default::default()
        };
        let p = rhb_partition(&a, 4, &cfg);
        check_dbbd_valid(&a, &p);
    }

    #[test]
    fn rhb_unit_weights_valid() {
        let a = grid_matrix(10, 10);
        let cfg = RhbConfig {
            constraint: ConstraintMode::Unit,
            ..Default::default()
        };
        let p = rhb_partition(&a, 2, &cfg);
        check_dbbd_valid(&a, &p);
    }

    #[test]
    fn edge_cover_factor_is_valid_and_thinner() {
        let a = grid_matrix(14, 14);
        let tril = RhbConfig::default();
        let edge = RhbConfig {
            factor: StructuralFactor::EdgeCover,
            ..Default::default()
        };
        let p_tril = rhb_partition(&a, 4, &tril);
        let p_edge = rhb_partition(&a, 4, &edge);
        check_dbbd_valid(&a, &p_tril);
        check_dbbd_valid(&a, &p_edge);
        assert!(
            p_edge.separator_size() <= p_tril.separator_size(),
            "edge-cover separator {} should not exceed tril {}",
            p_edge.separator_size(),
            p_tril.separator_size()
        );
    }

    #[test]
    fn all_vertices_accounted_for() {
        let a = grid_matrix(8, 8);
        let p = rhb_partition(&a, 2, &RhbConfig::default());
        let total: usize = p.subdomain_sizes().iter().sum::<usize>() + p.separator_size();
        assert_eq!(total, 64);
    }
}
