//! Fiduccia–Mattheyses refinement for hypergraph bisections.
//!
//! Gains follow the classical FM cut-net rules with net costs. Inside a
//! *bisection* the con1 and cut-net objectives coincide (λ ∈ {1,2}), so a
//! single gain structure serves every metric; the metrics differ across
//! recursion levels through net splitting / discarding and the soed
//! cost-halving trick (see [`crate::recursive`]).

use std::collections::BinaryHeap;

use crate::Hypergraph;

/// A hypergraph bisection with per-constraint side weights.
#[derive(Clone, Debug)]
pub struct HBisection {
    /// Side (0/1) of each vertex.
    pub side: Vec<u8>,
    /// Total cost of cut nets.
    pub cut: i64,
    /// `weights[s][c]` = weight of side `s` under constraint `c`.
    pub weights: [Vec<i64>; 2],
}

impl HBisection {
    /// Builds the bookkeeping from a side assignment.
    pub fn recompute(h: &Hypergraph, side: Vec<u8>) -> Self {
        let ncon = h.nconstraints();
        let mut weights = [vec![0i64; ncon], vec![0i64; ncon]];
        for v in 0..h.nvertices() {
            for c in 0..ncon {
                weights[side[v] as usize][c] += h.vertex_weight(v, c);
            }
        }
        let mut cut = 0i64;
        for n in 0..h.nnets() {
            let pins = h.pins_of(n);
            if pins.is_empty() {
                continue;
            }
            let s0 = side[pins[0]];
            if pins.iter().any(|&v| side[v] != s0) {
                cut += h.net_cost(n);
            }
        }
        HBisection { side, cut, weights }
    }

    /// Imbalance of constraint `c`.
    pub fn imbalance(&self, c: usize) -> f64 {
        let total = (self.weights[0][c] + self.weights[1][c]) as f64;
        if total == 0.0 {
            return 0.0;
        }
        let avg = total / 2.0;
        let max = self.weights[0][c].max(self.weights[1][c]) as f64;
        (max - avg) / avg
    }
}

/// Balance limits for FM (per constraint) and pass count.
#[derive(Clone, Debug)]
pub struct HFmLimits {
    /// Per-constraint upper bound on either side's weight.
    pub max_side: Vec<i64>,
    /// Maximum number of passes.
    pub max_passes: usize,
}

impl HFmLimits {
    /// `max_side[c] = (1+eps) * total[c] / 2` for every constraint.
    pub fn from_eps(h: &Hypergraph, eps: f64) -> Self {
        let max_side = h
            .total_weights()
            .iter()
            .map(|&t| ((t as f64) * (1.0 + eps) / 2.0).ceil() as i64)
            .collect();
        HFmLimits {
            max_side,
            max_passes: 6,
        }
    }
}

fn initial_gains(h: &Hypergraph, side: &[u8], cnt: &[[usize; 2]]) -> Vec<i64> {
    let mut gains = vec![0i64; h.nvertices()];
    for v in 0..h.nvertices() {
        let s = side[v] as usize;
        let mut g = 0i64;
        for &n in h.nets_of(v) {
            let c = h.net_cost(n);
            if cnt[n][s] == 1 {
                g += c; // moving v uncuts the net
            }
            if cnt[n][1 - s] == 0 {
                g -= c; // moving v cuts the net
            }
        }
        gains[v] = g;
    }
    gains
}

/// Runs FM passes on a bisection; returns the cut improvement (≥ 0).
pub fn refine(h: &Hypergraph, bis: &mut HBisection, limits: &HFmLimits) -> i64 {
    let n = h.nvertices();
    let ncon = h.nconstraints();
    let initial_cut = bis.cut;
    for _pass in 0..limits.max_passes {
        let mut side = bis.side.clone();
        let mut weights = bis.weights.clone();
        let mut cnt = vec![[0usize; 2]; h.nnets()];
        for net in 0..h.nnets() {
            for &v in h.pins_of(net) {
                cnt[net][side[v] as usize] += 1;
            }
        }
        let mut gains = initial_gains(h, &side, &cnt);
        let mut locked = vec![false; n];
        let mut heap: BinaryHeap<(i64, usize)> = (0..n).map(|v| (gains[v], v)).collect();
        let mut cur_cut = bis.cut;
        let mut best_cut = bis.cut;
        let mut moves: Vec<usize> = Vec::new();
        let mut best_prefix = 0usize;
        while let Some((gain, v)) = heap.pop() {
            if locked[v] || gain != gains[v] {
                continue;
            }
            let from = side[v] as usize;
            let to = 1 - from;
            // Balance: target must stay within bounds for all constraints
            // (unless the source side already violates them, in which case
            // the move reduces the violation).
            let ok = (0..ncon).all(|c| {
                weights[to][c] + h.vertex_weight(v, c) <= limits.max_side[c]
                    || weights[from][c] > limits.max_side[c]
            });
            if !ok {
                locked[v] = true;
                continue;
            }
            locked[v] = true;
            // Classical FM delta-gain updates around the move of v.
            for &net in h.nets_of(v) {
                let c = h.net_cost(net);
                // Before the move.
                if cnt[net][to] == 0 {
                    for &u in h.pins_of(net) {
                        if !locked[u] {
                            gains[u] += c;
                            heap.push((gains[u], u));
                        }
                    }
                } else if cnt[net][to] == 1 {
                    for &u in h.pins_of(net) {
                        if !locked[u] && side[u] as usize == to {
                            gains[u] -= c;
                            heap.push((gains[u], u));
                        }
                    }
                }
                cnt[net][from] -= 1;
                cnt[net][to] += 1;
                // After the move.
                if cnt[net][from] == 0 {
                    for &u in h.pins_of(net) {
                        if !locked[u] {
                            gains[u] -= c;
                            heap.push((gains[u], u));
                        }
                    }
                } else if cnt[net][from] == 1 {
                    for &u in h.pins_of(net) {
                        if !locked[u] && side[u] as usize == from {
                            gains[u] += c;
                            heap.push((gains[u], u));
                        }
                    }
                }
            }
            side[v] = to as u8;
            for c in 0..ncon {
                let w = h.vertex_weight(v, c);
                weights[from][c] -= w;
                weights[to][c] += w;
            }
            cur_cut -= gain;
            moves.push(v);
            if cur_cut < best_cut {
                best_cut = cur_cut;
                best_prefix = moves.len();
            }
        }
        if best_cut >= bis.cut {
            break;
        }
        let mut new_side = bis.side.clone();
        for &v in &moves[..best_prefix] {
            new_side[v] = 1 - new_side[v];
        }
        *bis = HBisection::recompute(h, new_side);
        debug_assert_eq!(bis.cut, best_cut, "incremental cut bookkeeping diverged");
    }
    initial_cut - bis.cut
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two cliques of nets joined by one bridge net.
    fn two_cluster_hg() -> Hypergraph {
        let mut pins: Vec<Vec<usize>> = Vec::new();
        // Cluster A: vertices 0..5, dense pairwise nets.
        for i in 0..5usize {
            for j in (i + 1)..5 {
                pins.push(vec![i, j]);
            }
        }
        // Cluster B: vertices 5..10.
        for i in 5..10usize {
            for j in (i + 1)..10 {
                pins.push(vec![i, j]);
            }
        }
        // Bridge.
        pins.push(vec![4, 5]);
        let ncost = vec![1i64; pins.len()];
        Hypergraph::from_pin_lists(10, &pins, vec![1; 10], 1, ncost)
    }

    #[test]
    fn fm_finds_the_natural_split() {
        let h = two_cluster_hg();
        // Interleaved bad start.
        let side: Vec<u8> = (0..10).map(|v| (v % 2) as u8).collect();
        let mut b = HBisection::recompute(&h, side);
        let before = b.cut;
        refine(&h, &mut b, &HFmLimits::from_eps(&h, 0.1));
        assert!(b.cut < before);
        assert_eq!(b.cut, 1, "only the bridge net should remain cut");
        // Verify against a fresh recompute.
        let fresh = HBisection::recompute(&h, b.side.clone());
        assert_eq!(fresh.cut, b.cut);
    }

    #[test]
    fn fm_respects_balance() {
        let h = two_cluster_hg();
        let side: Vec<u8> = (0..10).map(|v| (v % 2) as u8).collect();
        let mut b = HBisection::recompute(&h, side);
        let limits = HFmLimits::from_eps(&h, 0.1);
        refine(&h, &mut b, &limits);
        assert!(b.weights[0][0] <= limits.max_side[0]);
        assert!(b.weights[1][0] <= limits.max_side[0]);
    }

    #[test]
    fn fm_never_increases_cut() {
        let h = two_cluster_hg();
        let side: Vec<u8> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        let mut b = HBisection::recompute(&h, side);
        assert_eq!(b.cut, 1);
        refine(&h, &mut b, &HFmLimits::from_eps(&h, 0.1));
        assert_eq!(b.cut, 1, "optimal bisection must stay optimal");
    }

    #[test]
    fn recompute_counts_cut_nets_with_costs() {
        let h = Hypergraph::from_pin_lists(
            3,
            &[vec![0, 1], vec![1, 2], vec![0, 2]],
            vec![1; 3],
            1,
            vec![2, 3, 5],
        );
        let b = HBisection::recompute(&h, vec![0, 0, 1]);
        assert_eq!(b.cut, 3 + 5);
    }
}
