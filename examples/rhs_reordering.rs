//! Demonstrates the §IV sparse right-hand-side reorderings: natural vs
//! postorder vs hypergraph, with the padded-zero fractions and blocked
//! triangular-solve times they produce on one PDSLin subdomain.
//!
//! ```sh
//! cargo run --release --example rhs_reordering
//! ```

use pdslin::interface::{ehat_columns_pivot, g_solve_experiment};
use pdslin::subdomain::factor_domain;
use pdslin::{compute_partition, extract_dbbd, PartitionerKind, RhsOrdering};

fn main() {
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    let part = compute_partition(&a, 8, &PartitionerKind::Ngd);
    let sys = extract_dbbd(&a, part);
    let dom = &sys.domains[0];
    let fd = factor_domain(&dom.d, 0.1).expect("subdomain LU");
    let ncols = ehat_columns_pivot(&fd, dom).len();
    println!(
        "subdomain 0: dim(D) = {}, Ê has {} columns to solve (G = L⁻¹PÊ)\n",
        dom.dim(),
        ncols
    );
    println!(
        "{:<8} {:<12} {:>16} {:>12}",
        "B", "ordering", "padded zeros", "time (s)"
    );
    for &b in &[10usize, 60, 150] {
        for ord in [
            RhsOrdering::Natural,
            RhsOrdering::Postorder,
            RhsOrdering::Hypergraph { tau: Some(0.4) },
        ] {
            let (stats, secs, _order_secs) = g_solve_experiment(&fd, dom, b, ord);
            println!(
                "{:<8} {:<12} {:>9} ({:>5.1}%) {:>12.4}",
                b,
                ord.label(),
                stats.padded_zeros,
                100.0 * stats.padding_fraction(),
                secs
            );
        }
        println!();
    }
    println!("(B = 1 is padding-free by construction; larger B pads more but amortises");
    println!(" the symbolic work — the paper's default is B = 60)");
}
