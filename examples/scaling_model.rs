//! Simulates the paper's Fig.-1 core sweep: measure the sequential phase
//! costs of one solver setup, then replay them through the `parsim`
//! event-driven schedule simulator at 8…1024 cores.
//!
//! ```sh
//! cargo run --release --example scaling_model
//! ```

use parsim::pdslin_model::{sweep, MeasuredCosts};
use parsim::Machine;
use pdslin::{Pdslin, PdslinConfig};

fn main() {
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    println!("tdr190k analogue: n = {}, nnz = {}", a.nrows(), a.nnz());
    let cfg = PdslinConfig {
        k: 8,
        parallel: false,
        ..Default::default()
    };
    let mut solver = Pdslin::setup(&a, cfg).expect("setup");
    let b = vec![1.0; a.nrows()];
    let _ = solver.solve(&b).expect("solve");
    let costs = MeasuredCosts {
        lu_d: solver.stats.domain_costs.lu_d.clone(),
        comp_s: solver.stats.domain_costs.comp_s.clone(),
        gather_bytes: solver
            .stats
            .nnz_t
            .iter()
            .map(|&n| 12.0 * n as f64)
            .collect(),
        lu_s: solver.stats.times.lu_s,
        solve: solver.stats.times.solve,
    };
    println!(
        "measured sequential costs: LU(D) max {:.3}s, Comp(S) max {:.3}s, LU(S) {:.3}s\n",
        costs.lu_d.iter().cloned().fold(0.0, f64::max),
        costs.comp_s.iter().cloned().fold(0.0, f64::max),
        costs.lu_s
    );
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "cores", "LU(D)", "Comp(S)", "LU(S)", "Solve", "makespan"
    );
    let machine = Machine::default();
    for t in sweep(&costs, &machine, 8, &[8, 32, 128, 512, 1024]) {
        println!(
            "{:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>10.3}",
            t.cores, t.lu_d, t.comp_s, t.lu_s, t.solve, t.makespan
        );
    }
    println!("\n(two-level schedule: each of the 8 subdomains runs on a cores/8 gang;");
    println!(" T̃ gathers are α–β messages; LU(S) and the solve use the full machine)");
}
