//! Compare the NGD baseline against RHB (§III of the paper) on the
//! graded cavity analogue: separator size and the four Fig.-3 balance
//! metrics.
//!
//! ```sh
//! cargo run --release --example partition_balance
//! ```

use hypergraph::{ConstraintMode, CutMetric, RhbConfig};
use pdslin::{compute_partition, PartitionStats, PartitionerKind};

fn main() {
    let a = matgen::generate(matgen::MatrixKind::Tdr190k, matgen::Scale::Test);
    println!("tdr190k analogue: n = {}, nnz = {}\n", a.nrows(), a.nnz());
    let k = 8;
    println!(
        "{:<18} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "partitioner", "sep", "dim(D)", "nnz(D)", "col(E)", "nnz(E)"
    );
    let show = |label: &str, kind: &PartitionerKind| {
        let part = compute_partition(&a, k, kind);
        let st = PartitionStats::compute(&a, &part);
        println!(
            "{:<18} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            label,
            st.separator_size,
            st.dim_balance(),
            st.nnz_d_balance(),
            st.col_e_balance(),
            st.nnz_e_balance()
        );
    };
    show("NGD (baseline)", &PartitionerKind::Ngd);
    for (label, metric) in [
        ("RHB con1", CutMetric::Con1),
        ("RHB cnet", CutMetric::Cnet),
        ("RHB soed", CutMetric::Soed),
    ] {
        show(
            label,
            &PartitionerKind::Rhb(RhbConfig {
                metric,
                ..Default::default()
            }),
        );
    }
    show(
        "RHB soed multi",
        &PartitionerKind::Rhb(RhbConfig {
            constraint: ConstraintMode::Multi,
            ..Default::default()
        }),
    );
    println!("\n(balance columns are max/min over the {k} subdomains; 1.00 is perfect)");
}
