//! Shows the approximate-Schur preconditioner at work: GMRES on the
//! implicit Schur complement with and without `LU(S̃)`, across drop
//! thresholds (the sparsity/iterations trade-off of PDSLin).
//!
//! ```sh
//! cargo run --release --example schur_gmres
//! ```

use std::cell::RefCell;

use krylov::{gmres, GmresConfig, IdentityPrecond};
use pdslin::interface::{compute_interface, InterfaceConfig};
use pdslin::precond::{ImplicitSchur, SchurApplyScratch, SchurPrecond};
use pdslin::schur::{assemble_schur, factor_schur};
use pdslin::subdomain::factor_domain;
use pdslin::{compute_partition, extract_dbbd, PartitionerKind, RhsOrdering};

fn main() {
    let a = matgen::stencil::laplace3d(14, 14, 14);
    let part = compute_partition(&a, 4, &PartitionerKind::Ngd);
    let sys = extract_dbbd(&a, part);
    let factors: Vec<_> = sys
        .domains
        .iter()
        .map(|d| factor_domain(&d.d, 0.1).expect("LU(D)"))
        .collect();
    let icfg = InterfaceConfig {
        block_size: 60,
        ordering: RhsOrdering::Postorder,
        drop_tol: 0.0,
    };
    let t_tildes: Vec<_> = sys
        .domains
        .iter()
        .zip(&factors)
        .map(|(d, f)| compute_interface(f, d, &icfg).t_tilde)
        .collect();
    let s_hat = assemble_schur(&sys, &t_tildes);
    println!(
        "Schur system: n_S = {}, nnz(Ŝ) = {} (density {:.1}%)\n",
        sys.nsep(),
        s_hat.nnz(),
        100.0 * s_hat.nnz() as f64 / (sys.nsep() * sys.nsep()) as f64
    );
    let apply_scratch = RefCell::new(SchurApplyScratch::new());
    let op = ImplicitSchur::new(&sys, &factors, &apply_scratch);
    let b = vec![1.0; sys.nsep()];
    let cfg = GmresConfig {
        restart: 60,
        max_iters: 300,
        tol: 1e-10,
    };

    let r0 = gmres(&op, &IdentityPrecond, &b, None, &cfg);
    println!(
        "{:<26} {:>6} iterations   residual {:.1e}",
        "no preconditioner", r0.iterations, r0.residual
    );
    for drop_tol in [0.0, 1e-6, 1e-3, 1e-2] {
        let (s_tilde, lu) = factor_schur(&s_hat, drop_tol, 0.1).expect("LU(S̃)");
        let tri = RefCell::new(slu::TriScratch::new());
        let m = SchurPrecond::new(&lu, &tri);
        let r = gmres(&op, &m, &b, None, &cfg);
        println!(
            "{:<26} {:>6} iterations   residual {:.1e}   nnz(S̃) = {}",
            format!("LU(S̃), drop {drop_tol:.0e}"),
            r.iterations,
            r.residual,
            s_tilde.nnz()
        );
    }
    println!("\nAggressive dropping shrinks the preconditioner but costs iterations —");
    println!("the trade-off PDSLin navigates when building S̃ (paper §I).");
}
