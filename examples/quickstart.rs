//! Quickstart: solve a sparse linear system with the PDSLin-style hybrid
//! solver in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pdslin::{Pdslin, PdslinConfig};
use sparsekit::ops::residual_inf_norm;

fn main() {
    // A 3-D Poisson problem (n = 13 824).
    let a = matgen::stencil::laplace3d(24, 24, 24);
    println!("matrix: n = {}, nnz = {}", a.nrows(), a.nnz());

    // Configure the hybrid solver: 8 interior subdomains, defaults
    // everywhere else (NGD partitioner, postorder RHS ordering, B = 60).
    let cfg = PdslinConfig {
        k: 8,
        ..Default::default()
    };
    let mut solver = Pdslin::setup(&a, cfg).expect("setup failed");
    println!(
        "setup: separator = {}, nnz(S̃) = {}, phases (s): partition {:.2}, LU(D) {:.2}, Comp(S) {:.2}, LU(S) {:.2}",
        solver.stats.separator_size,
        solver.stats.nnz_schur,
        solver.stats.times.partition,
        solver.stats.times.lu_d,
        solver.stats.times.comp_s,
        solver.stats.times.lu_s,
    );

    // Solve A x = b.
    let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 13) as f64) - 6.0).collect();
    let out = solver.solve(&b).expect("solve failed");
    println!(
        "solve: {} iterations of {} on the Schur system, {:.2}s",
        out.iterations, out.method, out.seconds
    );
    println!(
        "residual ‖b − Ax‖∞ = {:.3e}",
        residual_inf_norm(&a, &out.x, &b)
    );
}
